"""Bit-transparency: telemetry must never change what the fabric does.

Every hook in the stack is gated on ``tracer is not None`` /
``metrics is not None`` and draws nothing from the experiment RNG
streams, so an instrumented run and a bare run of the same seed are
required to produce *identical* results — not statistically close,
equal.  These tests run both variants side by side and assert equality
of the full result structures, then sanity-check that the instrumented
variant actually captured telemetry (a silently dead tracer would make
the differential vacuous).
"""

import pytest

from repro.analysis.resilience import availability_over_time
from repro.core.conference import Conference
from repro.obs import MetricsRegistry, Tracer
from repro.parallel.cache import RouteCache
from repro.parallel.experiments import random_load_arm, search_trials
from repro.topology.builders import build

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]

N_PORTS = 16


def _availability(tracer=None, metrics=None):
    return availability_over_time(
        topology="extra-stage-cube",
        n_ports=N_PORTS,
        duration=300.0,
        seed=11,
        tracer=tracer,
        metrics=metrics,
    )


class TestAvailabilityTransparency:
    def test_rows_identical_with_and_without_telemetry(self):
        bare = _availability()
        tracer, registry = Tracer(), MetricsRegistry()
        instrumented = _availability(tracer=tracer, metrics=registry)
        assert instrumented == bare
        # ...and the telemetry side actually observed the run.
        assert tracer.emitted > 0
        assert "conference.submit" in tracer.counts()
        assert "repro_admissions_total" in registry
        assert "repro_link_occupancy" in registry

    def test_metrics_are_deterministic_across_runs(self):
        # No wall-clock metric records on this path (timed() stays off),
        # so two instrumented runs of the same seed render identically.
        first, second = MetricsRegistry(), MetricsRegistry()
        _availability(metrics=first)
        _availability(metrics=second)
        assert first.render_prometheus() == second.render_prometheus()

    def test_trace_counts_are_deterministic_across_runs(self):
        a, b = Tracer(), Tracer()
        _availability(tracer=a)
        _availability(tracer=b)
        assert a.counts() == b.counts()
        assert a.emitted == b.emitted


class TestRouteCacheTransparency:
    def _drive(self, cache):
        outcomes = []
        for members in ((0, 1), (2, 3), (0, 1), (4, 5, 6), (2, 3)):
            route = cache.route(Conference.of(list(members)))
            outcomes.append((route.levels, route.taps))
        cache.set_faults(frozenset())
        outcomes.append(cache.route(Conference.of([0, 1])).levels)
        return outcomes

    def test_traced_cache_matches_bare_cache(self):
        bare = RouteCache(build("extra-stage-cube", N_PORTS))
        tracer = Tracer()
        traced = RouteCache(build("extra-stage-cube", N_PORTS), tracer=tracer)
        assert self._drive(traced) == self._drive(bare)
        assert traced.stats == bare.stats
        counts = tracer.counts()
        assert counts["cache.miss"] == bare.stats.misses
        assert counts["cache.hit"] == bare.stats.hits
        assert counts["cache.invalidate"] == 1


class TestRunnerMetricsMerge:
    """Worker-side metrics merge: deterministic, and invisible to results."""

    @staticmethod
    def _deterministic(registry):
        # timed() histograms hold wall-clock observations, which honestly
        # differ between runs; everything else must merge exactly.
        return {
            name: family
            for name, family in registry.snapshot().items()
            if not name.endswith("_seconds")
        }

    def test_results_unchanged_by_metrics_attachment(self):
        bare = random_load_arm("omega", N_PORTS, trials=8, seed=42)
        metered = random_load_arm(
            "omega", N_PORTS, trials=8, seed=42, metrics=MetricsRegistry()
        )
        assert metered == bare

    def test_serial_and_parallel_merge_identically(self):
        serial_reg, pool_reg = MetricsRegistry(), MetricsRegistry()
        serial = search_trials(
            "extra-stage-cube", N_PORTS, trials=12, pool_size=16, seed=3,
            metrics=serial_reg,
        )
        pooled = search_trials(
            "extra-stage-cube", N_PORTS, trials=12, pool_size=16, seed=3,
            workers=2, chunk_size=3, metrics=pool_reg,
        )
        assert pooled == serial
        assert self._deterministic(pool_reg) == self._deterministic(serial_reg)
        assert serial_reg.counter("repro_trials_total").value(kind="search") == 12

    def test_timed_kernel_observations_survive_the_pool(self):
        # timed() records inside worker *processes*; the chunk reducer
        # must ship those histograms back.  The routing kernel is the
        # batch prime (trials route through the columnar core and hit
        # the warmed cache), so `repro_route_batch` is the histogram
        # that must survive.  (Counts are not compared against a serial
        # run on purpose: the per-process shared route cache makes the
        # number of cold computations depend on cache warmth, which
        # differs between a pool worker and the long-lived test
        # process.)
        pool_reg = MetricsRegistry()
        random_load_arm(
            "indirect-binary-cube", N_PORTS, trials=6, seed=9,
            workers=2, chunk_size=2, metrics=pool_reg,
        )
        name = "repro_route_batch_seconds"
        assert name in pool_reg
        assert pool_reg.histogram(name).count() > 0
