"""The scrape endpoint: /metrics, /healthz and /slo over live HTTP."""

import json
import urllib.error
import urllib.request

import pytest

from repro.obs import ExpositionServer, MetricsRegistry, SLOEvaluator
from repro.obs.slo import BurnWindow, SLOSpec

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=5.0) as resp:
            return resp.status, resp.headers.get("Content-Type", ""), resp.read().decode()
    except urllib.error.HTTPError as err:  # non-2xx still carries a body
        return err.code, err.headers.get("Content-Type", ""), err.read().decode()


@pytest.fixture()
def stack():
    registry = MetricsRegistry()
    slo = SLOEvaluator(frame=5.0)
    server = ExpositionServer(metrics=registry, slo=slo)  # port=0: OS picks
    server.start()
    yield registry, slo, server
    server.stop()


class TestEndpoints:
    def test_metrics_serves_prometheus_text(self, stack):
        registry, _, server = stack
        registry.counter("repro_admissions_total", "admissions").inc(4, outcome="ok")
        code, ctype, body = _get(server.url + "/metrics")
        assert code == 200
        assert ctype.startswith("text/plain")
        assert body == registry.render_prometheus()
        assert 'repro_admissions_total{outcome="ok"} 4' in body

    def test_slo_serves_last_evaluation(self, stack):
        _, slo, server = stack
        slo.record("availability", good=10, now=0.0)
        slo.evaluate(0.0)
        code, ctype, body = _get(server.url + "/slo")
        assert code == 200
        assert ctype == "application/json"
        assert json.loads(body) == slo.last

    def test_healthz_ok_while_not_paging(self, stack):
        _, _, server = stack
        code, _, body = _get(server.url + "/healthz")
        assert code == 200
        assert json.loads(body) == {"slo_state": "ok", "status": "ok"}

    def test_healthz_503_when_paging(self, stack):
        _, slo, server = stack
        slo.record("availability", bad=100, now=0.0)
        slo.evaluate(0.0)
        assert slo.state == "page"
        code, _, body = _get(server.url + "/healthz")
        assert code == 503
        assert json.loads(body)["status"] == "failing"

    def test_unknown_path_is_404(self, stack):
        _, _, server = stack
        code, _, _ = _get(server.url + "/nope")
        assert code == 404

    def test_query_strings_are_ignored(self, stack):
        _, _, server = stack
        code, _, _ = _get(server.url + "/healthz?probe=1")
        assert code == 200


class TestLifecycle:
    def test_port_zero_resolves_to_bound_port(self, stack):
        _, _, server = stack
        assert server.port != 0
        assert server.url == f"http://127.0.0.1:{server.port}"

    def test_double_start_raises(self, stack):
        _, _, server = stack
        with pytest.raises(RuntimeError):
            server.start()

    def test_stop_is_idempotent(self):
        server = ExpositionServer(metrics=MetricsRegistry())
        server.start()
        server.stop()
        server.stop()

    def test_context_manager_serves_and_stops(self):
        with ExpositionServer(metrics=MetricsRegistry()) as server:
            code, _, _ = _get(server.url + "/healthz")
            assert code == 200
            url = server.url
        with pytest.raises(urllib.error.URLError):
            urllib.request.urlopen(url + "/healthz", timeout=1.0)

    def test_missing_registry_and_slo_404(self):
        with ExpositionServer() as server:
            code, _, _ = _get(server.url + "/metrics")
            assert code == 404
            code, _, body = _get(server.url + "/slo")
            assert code == 404
            assert "error" in json.loads(body)
            # healthz still answers: liveness needs no attachments.
            code, _, _ = _get(server.url + "/healthz")
            assert code == 200
