"""Snapshot tests pinning the public API surface.

``public_api_manifest.txt`` is the reviewed record of what the library
promises; ``repro.api.__all__`` must match it exactly.  Growing the
surface is a deliberate act: update the manifest AND ``docs/api.md`` in
the same change (CI's ``public-api`` job runs this file plus
``tools/check_public_api.py`` to enforce the pairing).
"""

import inspect
import subprocess
import sys
import warnings
from pathlib import Path

import pytest

import repro
from repro import api

pytestmark = pytest.mark.tier1

REPO = Path(__file__).resolve().parents[2]
MANIFEST = Path(__file__).with_name("public_api_manifest.txt")


class TestManifest:
    def test_surface_matches_the_manifest(self):
        recorded = MANIFEST.read_text().split()
        assert sorted(api.__all__) == recorded, (
            "repro.api.__all__ drifted from tests/api/public_api_manifest.txt; "
            "if the change is intentional, update the manifest and docs/api.md"
        )

    def test_no_duplicates(self):
        assert len(api.__all__) == len(set(api.__all__))

    def test_every_name_resolves_through_api_and_repro(self):
        for name in api.__all__:
            assert getattr(api, name) is getattr(repro, name)

    def test_package_all_is_api_all_plus_version(self):
        assert set(repro.__all__) == {*api.__all__, "__version__"}

    def test_docs_cover_every_name(self):
        docs = (REPO / "docs" / "api.md").read_text()
        missing = [name for name in api.__all__ if f"`{name}`" not in docs]
        assert not missing, f"docs/api.md does not mention: {missing}"


class TestResultContract:
    def test_conformers(self):
        from repro.core.healing import SubmitOutcome
        from repro.core.network import ConferenceNetwork
        from repro.serve.bench import run_serve_bench
        from repro.serve.protocol import ServiceResponse

        net = ConferenceNetwork.build("indirect-binary-cube", 16, dilation=8)
        realization = net.realize([[0, 1, 2]])
        conformers = [
            realization,
            SubmitOutcome("admitted", 0),
            SubmitOutcome("lost", 1, reason="ports"),
            ServiceResponse(ok=True, status="admitted", kind="open", request_id=0),
            run_serve_bench(16, conferences=5, seed=0),
        ]
        for value in conformers:
            assert isinstance(value, api.Result), type(value).__name__
            payload = value.as_dict()
            assert "kind" in payload and "ok" in payload
            if value.ok:
                assert value.reason is None

    def test_shared_serializer_stamps_the_envelope(self):
        from repro.core.healing import SubmitOutcome
        from repro.report.serialize import result_to_dict

        payload = result_to_dict(SubmitOutcome("lost", 3, reason="capacity"))
        assert payload["kind"] == "submit_outcome"
        assert payload["ok"] is False
        assert payload["reason"] == "capacity"
        assert payload["schema"] == 1

    def test_serializer_rejects_non_results(self):
        from repro.report.serialize import result_to_dict

        with pytest.raises(TypeError, match="result contract"):
            result_to_dict(object())


class TestConstructorConvention:
    # Satellite of the 1.1 redesign: every controller-level constructor
    # spells its collaborators the same way, keyword-only.

    @pytest.mark.parametrize(
        "cls, expected",
        [
            (api.AdmissionController, ["tracer"]),
            (
                api.SelfHealingController,
                ["retry", "rng", "route_cache", "tracer", "metrics"],
            ),
            (
                api.FabricService,
                ["retry", "rng", "route_cache", "tracer", "metrics"],
            ),
            (
                api.ClusterService,
                ["retry", "rng", "route_cache", "tracer", "metrics"],
            ),
        ],
    )
    def test_keyword_only_collaborators(self, cls, expected):
        params = inspect.signature(cls.__init__).parameters
        for name in expected:
            assert name in params, f"{cls.__name__} lacks {name}="
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY

    # Satellite of the 1.6 redesign: every churn entry point takes its
    # configuration (policy, fallback, limits) keyword-only.
    @pytest.mark.parametrize(
        "fn, expected",
        [
            (api.extend_route, ["policy", "fallback", "max_taps_moved", "drift_limit"]),
            (api.prune_route, ["policy", "fallback", "max_taps_moved", "drift_limit"]),
            (api.join_member, ["policy", "fallback", "max_taps_moved", "drift_limit"]),
            (api.leave_member, ["policy", "fallback", "max_taps_moved", "drift_limit"]),
            (api.apply_churn, ["policy", "faults"]),
        ],
    )
    def test_churn_configuration_is_keyword_only(self, fn, expected):
        params = inspect.signature(fn).parameters
        for name in expected:
            assert name in params, f"{fn.__name__} lacks {name}="
            assert params[name].kind is inspect.Parameter.KEYWORD_ONLY


class TestDeprecations:
    def test_legacy_names_warn_once_per_process(self):
        code = (
            "import warnings, repro\n"
            "with warnings.catch_warnings(record=True) as log:\n"
            "    warnings.simplefilter('always')\n"
            "    repro.BuddyAllocator; repro.BuddyAllocator; repro.BuddyAllocator\n"
            "dep = [w for w in log if issubclass(w.category, DeprecationWarning)]\n"
            "assert len(dep) == 1, f'expected exactly one warning, got {len(dep)}'\n"
            "assert 'repro.core.admission' in str(dep[0].message)\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": str(REPO / "src")},
        )

    def test_all_legacy_names_resolve_and_point_home(self):
        for name, (module_name, attr) in repro._LEGACY.items():
            with warnings.catch_warnings(record=True) as log:
                warnings.simplefilter("always")
                # Bypass the cache so each name warns in this process
                # regardless of earlier accesses.
                value = repro.__getattr__(name)
            import importlib

            assert value is getattr(importlib.import_module(module_name), attr)
            dep = [w for w in log if issubclass(w.category, DeprecationWarning)]
            assert len(dep) == 1
            assert module_name in str(dep[0].message)

    def test_stable_names_do_not_warn(self):
        code = (
            "import warnings\n"
            "with warnings.catch_warnings(record=True) as log:\n"
            "    warnings.simplefilter('always')\n"
            "    from repro import ConferenceNetwork, FabricService, build\n"
            "dep = [w for w in log if issubclass(w.category, DeprecationWarning)]\n"
            "assert not dep, [str(w.message) for w in dep]\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": str(REPO / "src")},
        )

    def test_apply_churn_positional_policy_warns_once(self):
        code = (
            "import warnings\n"
            "from repro.core.churn import apply_churn\n"
            "from repro.core.conference import Conference\n"
            "from repro.core.routing import RoutingPolicy, route_conference\n"
            "from repro.topology.builders import build\n"
            "net = build('indirect-binary-cube', 16)\n"
            "route = route_conference(net, Conference.of([0, 1, 2]))\n"
            "with warnings.catch_warnings(record=True) as log:\n"
            "    warnings.simplefilter('always')\n"
            "    apply_churn(net, route, [0, 1, 2, 3], RoutingPolicy())\n"
            "    apply_churn(net, route, [0, 1], RoutingPolicy())\n"
            "dep = [w for w in log if issubclass(w.category, DeprecationWarning)]\n"
            "assert len(dep) == 1, f'expected exactly one warning, got {len(dep)}'\n"
            "assert 'policy=' in str(dep[0].message)\n"
        )
        subprocess.run(
            [sys.executable, "-c", code],
            check=True,
            env={"PYTHONPATH": str(REPO / "src")},
        )

    def test_apply_churn_keyword_policy_does_not_warn(self):
        from repro.core.churn import apply_churn
        from repro.core.conference import Conference
        from repro.core.routing import RoutingPolicy, route_conference
        from repro.topology.builders import build

        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of([0, 1, 2]))
        with warnings.catch_warnings(record=True) as log:
            warnings.simplefilter("always")
            apply_churn(net, route, [0, 1, 2, 3], policy=RoutingPolicy())
        assert not [w for w in log if issubclass(w.category, DeprecationWarning)]

    def test_healing_seed_kwarg_warns_but_works(self):
        from repro.core.network import ConferenceNetwork

        net = ConferenceNetwork.build("indirect-binary-cube", 16)
        with pytest.warns(DeprecationWarning, match="pass rng="):
            controller = api.SelfHealingController(net, seed=3)
        assert controller.network is net

    def test_unknown_attribute_raises(self):
        with pytest.raises(AttributeError, match="no attribute"):
            repro.definitely_not_a_name
