"""Tests for RNG plumbing."""

import numpy as np
import pytest

from repro.util.rng import ensure_rng, spawn_rngs


class TestEnsureRng:
    def test_int_seed_is_deterministic(self):
        a = ensure_rng(123).integers(0, 1_000_000, size=8)
        b = ensure_rng(123).integers(0, 1_000_000, size=8)
        assert np.array_equal(a, b)

    def test_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert ensure_rng(gen) is gen

    def test_none_gives_generator(self):
        assert isinstance(ensure_rng(None), np.random.Generator)


class TestSpawn:
    def test_children_are_independent_and_deterministic(self):
        kids_a = spawn_rngs(7, 3)
        kids_b = spawn_rngs(7, 3)
        for ka, kb in zip(kids_a, kids_b):
            assert np.array_equal(ka.integers(0, 1 << 30, 4), kb.integers(0, 1 << 30, 4))
        draws = [tuple(k.integers(0, 1 << 30, 4)) for k in spawn_rngs(7, 3)]
        assert len(set(draws)) == 3  # streams differ from each other

    def test_count_zero(self):
        assert spawn_rngs(0, 0) == []

    def test_negative_count_rejected(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)
