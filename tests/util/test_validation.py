"""Tests for the argument validation helpers."""

import pytest

from repro.util import validation as v


class TestNetworkSize:
    @pytest.mark.parametrize("n,expected", [(2, 1), (8, 3), (1024, 10)])
    def test_valid_sizes(self, n, expected):
        assert v.check_network_size(n) == expected

    @pytest.mark.parametrize("n", [0, 1, 3, 6, -8])
    def test_invalid_sizes(self, n):
        with pytest.raises(ValueError):
            v.check_network_size(n)

    @pytest.mark.parametrize("n", [2.0, "8", True])
    def test_wrong_types(self, n):
        with pytest.raises(TypeError):
            v.check_network_size(n)


class TestPorts:
    def test_check_port_passes(self):
        assert v.check_port(3, 8) == 3

    def test_check_port_out_of_range(self):
        with pytest.raises(ValueError):
            v.check_port(8, 8)
        with pytest.raises(ValueError):
            v.check_port(-1, 8)

    def test_check_port_type(self):
        with pytest.raises(TypeError):
            v.check_port(True, 8)

    def test_check_ports_sorts_and_validates(self):
        assert v.check_ports([5, 1, 3], 8) == (1, 3, 5)

    def test_check_ports_duplicates(self):
        with pytest.raises(ValueError, match="duplicate"):
            v.check_ports([1, 1], 8)


class TestStageAndScalars:
    def test_stage_bounds(self):
        assert v.check_stage(0, 3) == 0
        assert v.check_stage(3, 3, inclusive=True) == 3
        with pytest.raises(ValueError):
            v.check_stage(3, 3)
        with pytest.raises(ValueError):
            v.check_stage(-1, 3)

    def test_positive(self):
        assert v.check_positive(0.5, "x") == 0.5
        with pytest.raises(ValueError):
            v.check_positive(0, "x")

    def test_probability(self):
        assert v.check_probability(0.0, "p") == 0.0
        assert v.check_probability(1.0, "p") == 1.0
        with pytest.raises(ValueError):
            v.check_probability(1.5, "p")
