"""Unit and property tests for the bit-field helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.util import bits

N_BITS = st.integers(min_value=1, max_value=16)


def value_for(n):
    return st.integers(min_value=0, max_value=(1 << n) - 1)


class TestPowersAndLogs:
    def test_is_power_of_two_accepts_powers(self):
        for k in range(20):
            assert bits.is_power_of_two(1 << k)

    @pytest.mark.parametrize("x", [0, -1, -8, 3, 6, 12, 100])
    def test_is_power_of_two_rejects_non_powers(self, x):
        assert not bits.is_power_of_two(x)

    def test_ilog2_exact(self):
        for k in range(20):
            assert bits.ilog2(1 << k) == k

    @pytest.mark.parametrize("x", [0, -4, 3, 12])
    def test_ilog2_rejects(self, x):
        with pytest.raises(ValueError):
            bits.ilog2(x)


class TestBitAccess:
    def test_bit_values(self):
        assert bits.bit(0b1010, 1) == 1
        assert bits.bit(0b1010, 0) == 0
        assert bits.bit(0b1010, 3) == 1

    def test_set_bit(self):
        assert bits.set_bit(0b1010, 0, 1) == 0b1011
        assert bits.set_bit(0b1010, 3, 0) == 0b0010
        assert bits.set_bit(0b1010, 1, 1) == 0b1010

    def test_set_bit_rejects_bad_value(self):
        with pytest.raises(ValueError):
            bits.set_bit(0, 0, 2)

    def test_flip_bit_involution(self):
        for x in range(32):
            for i in range(5):
                assert bits.flip_bit(bits.flip_bit(x, i), i) == x

    def test_mask_of(self):
        assert bits.mask_of(0) == 0
        assert bits.mask_of(3) == 0b111

    def test_mask_of_rejects_negative(self):
        with pytest.raises(ValueError):
            bits.mask_of(-1)

    def test_windows_partition_value(self):
        x, n = 0b110101, 6
        assert bits.low_bits(x, 3) | (bits.high_bits(x, 3, n) << 3) == x

    @given(N_BITS.flatmap(lambda n: st.tuples(st.just(n), value_for(n))))
    def test_bit_window_full_is_identity(self, n_and_x):
        n, x = n_and_x
        assert bits.bit_window(x, 0, n) == x

    def test_bit_window_bounds(self):
        with pytest.raises(ValueError):
            bits.bit_window(5, 3, 1)


class TestRotations:
    @given(st.integers(0, 255), st.integers(0, 24))
    def test_rotate_round_trip(self, x, count):
        assert bits.rotate_right(bits.rotate_left(x, 8, count), 8, count) == x & 0xFF

    def test_rotate_left_is_shuffle(self):
        # Perfect shuffle of 8 ports: 0,4,1,5,2,6,3,7 map to 0..7 order.
        assert [bits.rotate_left(x, 3) for x in range(8)] == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_rotate_full_cycle(self):
        for x in range(16):
            assert bits.rotate_left(x, 4, 4) == x

    def test_rotate_rejects_zero_width(self):
        with pytest.raises(ValueError):
            bits.rotate_left(1, 0)


class TestBitReverse:
    def test_known_values(self):
        assert bits.bit_reverse(0b001, 3) == 0b100
        assert bits.bit_reverse(0b110, 3) == 0b011

    @given(N_BITS.flatmap(lambda n: st.tuples(st.just(n), value_for(n))))
    def test_involution(self, n_and_x):
        n, x = n_and_x
        assert bits.bit_reverse(bits.bit_reverse(x, n), n) == x


class TestPrefixSuffix:
    def test_common_prefix(self):
        assert bits.common_prefix_len([0b100, 0b101], 3) == 2
        assert bits.common_prefix_len([0b100, 0b001], 3) == 0
        assert bits.common_prefix_len([5], 3) == 3
        assert bits.common_prefix_len([5, 5, 5], 3) == 3

    def test_common_suffix(self):
        assert bits.common_suffix_len([0b100, 0b000], 3) == 2
        assert bits.common_suffix_len([0b101, 0b011], 3) == 1
        assert bits.common_suffix_len([7], 3) == 3

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            bits.common_prefix_len([], 3)
        with pytest.raises(ValueError):
            bits.common_suffix_len([], 3)

    @given(st.lists(value_for(8), min_size=1, max_size=6))
    def test_prefix_suffix_consistent_with_membership(self, values):
        p = bits.common_prefix_len(values, 8)
        s = bits.common_suffix_len(values, 8)
        for v in values:
            assert bits.high_bits(v, 8 - p, 8) == bits.high_bits(values[0], 8 - p, 8)
            assert bits.low_bits(v, s) == bits.low_bits(values[0], s)

    @given(st.lists(value_for(8), min_size=2, max_size=6).filter(lambda v: len(set(v)) > 1))
    def test_prefix_is_maximal(self, values):
        p = bits.common_prefix_len(values, 8)
        assert p < 8
        # One more bit of prefix must differ somewhere.
        tops = {bits.high_bits(v, 8 - p - 1, 8) for v in values}
        assert len(tops) > 1


class TestBlocks:
    def test_enclosing_block_exponent(self):
        assert bits.enclosing_block_exponent([0, 1], 4) == 1
        assert bits.enclosing_block_exponent([0, 3], 4) == 2
        assert bits.enclosing_block_exponent([4, 7], 4) == 2
        assert bits.enclosing_block_exponent([3, 4], 4) == 3
        assert bits.enclosing_block_exponent([9], 4) == 0

    @given(st.lists(value_for(6), min_size=1, max_size=8))
    def test_enclosing_block_contains_members(self, members):
        k = bits.enclosing_block_exponent(members, 6)
        block = bits.aligned_block_of(members[0], k)
        assert all(m in block for m in members)

    @given(st.lists(value_for(6), min_size=2, max_size=8).filter(lambda v: len(set(v)) > 1))
    def test_enclosing_block_is_minimal(self, members):
        k = bits.enclosing_block_exponent(members, 6)
        assert k >= 1
        half = bits.aligned_block_of(members[0], k - 1)
        assert not all(m in half for m in members)

    def test_aligned_block_requires_alignment(self):
        with pytest.raises(ValueError):
            bits.aligned_block(2, 2)
        assert list(bits.aligned_block(4, 2)) == [4, 5, 6, 7]

    def test_aligned_block_of(self):
        assert list(bits.aligned_block_of(5, 2)) == [4, 5, 6, 7]


class TestMisc:
    def test_popcount(self):
        assert bits.popcount(0) == 0
        assert bits.popcount(0b1011) == 3

    def test_iter_bits(self):
        assert bits.iter_bits(0b110, 3) == (0, 1, 1)

    def test_same_high_low(self):
        assert bits.same_high_bits(0b1100, 0b1101, 1, 4)
        assert not bits.same_high_bits(0b1100, 0b0100, 3, 4)
        assert bits.same_low_bits(0b1101, 0b0101, 3)
        assert not bits.same_low_bits(0b1101, 0b1100, 1)
