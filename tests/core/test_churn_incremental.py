"""Properties of the incremental churn engine: validity, drift, limits.

Complements ``test_churn.py`` (the membership-change API contract) with
the 1.6 guarantees: an extended route is always a valid conference
routing, extend-then-prune restores the original link set exactly, and
the disruption limits (``max_taps_moved``, ``drift_limit``) demote to
an explicit full reroute — or raise — instead of silently violating the
bound.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.churn import (
    ChurnLimitExceeded,
    ChurnPolicy,
    extend_route,
    join_member,
    prune_route,
)
from repro.core.conference import Conference
from repro.core.routing import RoutingPolicy, delivered_members, route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build

TOPOLOGIES = sorted(PAPER_TOPOLOGIES)
N = 16


def _scenario(draw_members, draw_joiner):
    members = sorted(draw_members)
    joiner = draw_joiner
    return members, joiner


class TestExtendValidity:
    @settings(max_examples=60, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        ports=st.sets(st.integers(0, N - 1), min_size=3, max_size=6),
        data=st.data(),
    )
    def test_extended_route_is_a_valid_conference_routing(self, topology, ports, data):
        """Every member (old and new) still receives the full mix."""
        members = sorted(ports)
        joiner = members.pop()
        net = build(topology, N)
        route = route_conference(net, Conference.of(members))
        result = extend_route(net, route, joiner)
        after = result.after
        assert after.conference.members == tuple(sorted([*members, joiner]))
        full = (1 << len(after.conference.members)) - 1
        arriving = delivered_members(net, after.conference, after.levels, after.taps)
        for port, got in arriving.items():
            assert got == full, f"tap for {port} hears {got:b}, want {full:b}"

    @settings(max_examples=60, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        ports=st.sets(st.integers(0, N - 1), min_size=3, max_size=6),
    )
    def test_extend_on_natural_route_equals_fresh_route(self, topology, ports):
        """On a conflict-free route the incremental result is identical
        to routing the grown conference from scratch — incremental mode
        changes what gets reprogrammed, never the outcome."""
        members = sorted(ports)
        joiner = members.pop()
        net = build(topology, N)
        route = route_conference(net, Conference.of(members))
        result = extend_route(net, route, joiner)
        fresh = route_conference(
            net, Conference.of(sorted([*members, joiner]))
        )
        assert result.after.levels == fresh.levels
        assert result.after.taps == fresh.taps
        assert result.drift_links == 0

    @settings(max_examples=60, deadline=None)
    @given(
        topology=st.sampled_from(TOPOLOGIES),
        ports=st.sets(st.integers(0, N - 1), min_size=3, max_size=6),
    )
    def test_prune_of_extend_restores_the_link_set(self, topology, ports):
        members = sorted(ports)
        joiner = members.pop()
        net = build(topology, N)
        route = route_conference(net, Conference.of(members))
        grown = extend_route(net, route, joiner).after
        back = prune_route(net, grown, joiner).after
        assert back.links == route.links
        assert back.taps == route.taps


class TestDrift:
    """Drift needs a non-natural starting route: heal around a fault
    that moves a tap, repair the fault, then extend incrementally."""

    def _healed(self):
        net = build("omega", N)
        conf = Conference.of([2, 6, 14])
        healthy = route_conference(net, conf)
        healed = route_conference(net, conf, faults=frozenset({(3, 6)}))
        assert healed.taps != healthy.taps  # the fault moved a tap
        return net, healed

    def test_extending_a_healed_route_accrues_drift(self):
        net, healed = self._healed()
        result = extend_route(net, healed, 10)
        assert result.mode == "incremental"
        assert result.hitless  # the pins survive, nobody's tap moves...
        assert result.drift_links == 1  # ...at the price of a surplus link

    def test_prune_resets_drift(self):
        """Leaves re-tap survivors naturally, so pins never survive one."""
        net, healed = self._healed()
        grown = extend_route(net, healed, 10).after
        back = prune_route(net, grown, 10)
        assert back.drift_links == 0
        fresh = route_conference(net, Conference.of([2, 6, 14]))
        assert back.after.links == fresh.links

    def test_drift_limit_demotes_to_full_reroute(self):
        net, healed = self._healed()
        result = extend_route(net, healed, 10, drift_limit=0)
        assert result.mode == "full-reroute"
        assert result.fallback_reason == "drift:1>0"
        assert result.drift_links == 0  # the reroute shed the pins

    def test_drift_limit_raise_fallback(self):
        net, healed = self._healed()
        with pytest.raises(ChurnLimitExceeded) as excinfo:
            extend_route(net, healed, 10, drift_limit=0, fallback="raise")
        assert excinfo.value.reason == "drift:1>0"


class TestLimits:
    def test_max_taps_moved_demotes_block_growing_join(self):
        net = build("indirect-binary-cube", N)
        route = route_conference(net, Conference.of([0, 1]))
        result = extend_route(net, route, 8, max_taps_moved=0)
        assert result.mode == "full-reroute"
        assert result.fallback_reason == "taps-moved:2>0"
        # The fallback still lands on the correct grown route.
        assert result.after.levels == route_conference(
            net, Conference.of([0, 1, 8])
        ).levels

    def test_max_taps_moved_raise_fallback(self):
        net = build("indirect-binary-cube", N)
        route = route_conference(net, Conference.of([0, 1]))
        with pytest.raises(ChurnLimitExceeded, match="taps-moved"):
            extend_route(net, route, 8, max_taps_moved=0, fallback="raise")

    def test_hitless_join_passes_any_limit(self):
        net = build("indirect-binary-cube", N)
        route = route_conference(net, Conference.of([0, 3]))
        result = join_member(net, route, 1, max_taps_moved=0, drift_limit=0)
        assert result.mode == "incremental"
        assert result.hitless

    def test_unknown_fallback_rejected(self):
        net = build("indirect-binary-cube", N)
        route = route_conference(net, Conference.of([0, 1]))
        with pytest.raises(ValueError, match="fallback"):
            extend_route(net, route, 8, max_taps_moved=0, fallback="explode")


class TestChurnPolicy:
    def test_defaults(self):
        policy = ChurnPolicy()
        assert policy.incremental
        assert policy.max_taps_moved is None
        assert policy.drift_limit is None
        assert policy.fallback == "reroute"

    def test_validation(self):
        with pytest.raises(ValueError, match="fallback"):
            ChurnPolicy(fallback="explode")
        with pytest.raises(ValueError, match="max_taps_moved"):
            ChurnPolicy(max_taps_moved=-1)
        with pytest.raises(ValueError, match="drift_limit"):
            ChurnPolicy(drift_limit=-1)

    def test_prune_policy_has_no_incremental_form(self):
        net = build("indirect-binary-cube", N)
        policy = RoutingPolicy(prune=True)
        route = route_conference(net, Conference.of([0, 3]), policy)
        result = extend_route(net, route, 1, policy=policy)
        assert result.mode == "full-reroute"
        assert result.fallback_reason == "prune-policy"
