"""Differential harness: the columnar kernel against sequential oracles.

``route_batch`` promises **byte-identity** with the per-object
``route_conference`` walk it replaced, not mere equality: Route dicts
built in the same insertion order, frozensets iterating identically,
errors raised with the same type and message.  Now that the kernel is
the only engine, the oracle lives *here*: ``sequential_outcomes`` routes
each conference one at a time through the public per-object API, and the
grid compares the strongest observable form of each output — ``repr``
bytes for routes, ``list()`` order for frozensets, ``args`` for errors,
whole outcome/ledger structures for the admission and healing layers.

The same applies to conflict accounting: ``analyze_conflicts`` is the
columnar load matrix, and ``counter_walk_report`` below re-implements
the original Counter-based walk as a reference the report is held
field-for-field equal to, worst-link tie-break included.
"""

from collections import Counter

import pytest

from repro.core.admission import AdmissionController, AdmissionDenied
from repro.core.batch import (
    MAX_KERNEL_MEMBERS,
    BatchRouteOutcome,
    analyze_conflicts_columnar,
    route_batch,
)
from repro.core.conference import Conference
from repro.core.conflict import ConflictReport, analyze_conflicts, link_loads
from repro.core.healing import SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import (
    RoutingPolicy,
    UnroutableError,
    route_conference_sequential,
)
from repro.sim.engine import EventLoop
from repro.topology.builders import build
from repro.util.rng import ensure_rng
from repro.workloads.generators import uniform_partition

pytestmark = pytest.mark.tier1

TOPOLOGIES = ("omega", "baseline", "indirect-binary-cube", "extra-stage-cube")


def random_batch(n_ports, rng, size, max_members=6):
    """Non-disjoint conferences (overlap stresses tap/conflict paths)."""
    batch = []
    for cid in range(size):
        k = int(rng.integers(2, max_members + 1))
        members = rng.choice(n_ports, size=min(k, n_ports), replace=False)
        batch.append(Conference.of((int(m) for m in members), cid))
    return batch


def sequential_outcomes(net, batch, policy=None, faults=None):
    """The per-object oracle: one sequential-walk call at a time.

    Uses ``route_conference_sequential`` directly — the public
    ``route_conference`` now routes through the kernel as a batch of
    one, so comparing against it would be kernel-vs-kernel.
    """
    policy = policy or RoutingPolicy()
    dead = frozenset(faults or ())
    out = []
    for conf in batch:
        try:
            route = route_conference_sequential(net, conf, policy, faults=dead or None)
            out.append(BatchRouteOutcome(conf, route=route))
        except ValueError as exc:  # UnroutableError is a ValueError subclass
            out.append(BatchRouteOutcome(conf, error=exc))
    return out


def counter_walk_report(routes, n_stages=None):
    """The original Counter-based conflict walk, kept as the reference.

    Field-for-field the implementation ``analyze_conflicts`` shipped
    before the columnar fold — including the lowest-point tie-break on
    the worst link, which the kernel must reproduce exactly.
    """
    routes = list(routes)
    if n_stages is None:
        if not routes:
            raise ValueError("n_stages is required for an empty route collection")
        n_stages = routes[0].n_stages
    loads = link_loads(routes)
    profile = [0] * n_stages
    worst, worst_load = None, 0
    for (level, row), load in loads.items():
        profile[level - 1] = max(profile[level - 1], load)
        if load > worst_load or (
            load == worst_load and worst is not None and (level, row) < worst
        ):
            worst, worst_load = (level, row), load
    return ConflictReport(
        n_conferences=len(routes),
        n_stages=n_stages,
        max_multiplicity=worst_load,
        worst_link=worst,
        stage_profile=tuple(profile),
        load_histogram=tuple(sorted(Counter(loads.values()).items())),
        total_links_used=len(loads),
    )


def assert_outcomes_identical(batched, oracle):
    assert len(batched) == len(oracle)
    for got, want in zip(batched, oracle):
        assert got.conference == want.conference
        assert got.ok == want.ok
        if want.ok:
            # repr covers every field *and* dict insertion order.
            assert repr(got.route) == repr(want.route)
            # frozenset iteration order is the subtle half of the
            # contract: it drives Counter order and admission messages.
            assert list(got.route.links) == list(want.route.links)
            assert list(got.route.points) == list(want.route.points)
            assert list(got.route.taps) == list(want.route.taps)
        else:
            assert type(got.error) is type(want.error)
            assert got.error.args == want.error.args


class TestRouteBatchGrid:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("tap", ["earliest", "final"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_grid_topology_tap_seed(self, topology, tap, seed):
        net = build(topology, 16)
        policy = RoutingPolicy(tap_policy=tap)
        rng = ensure_rng(seed)
        batch = random_batch(16, rng, size=24)
        assert_outcomes_identical(
            route_batch(net, batch, policy),
            sequential_outcomes(net, batch, policy),
        )

    @pytest.mark.parametrize("size", [1, 3, 40, 200])
    def test_batch_sizes_cross_chunk_boundaries(self, size):
        net = build("indirect-binary-cube", 16)
        rng = ensure_rng(size)
        batch = random_batch(16, rng, size=size)
        assert_outcomes_identical(
            route_batch(net, batch), sequential_outcomes(net, batch)
        )

    def test_larger_network(self):
        net = build("omega", 64)
        rng = ensure_rng(3)
        batch = random_batch(64, rng, size=32, max_members=10)
        assert_outcomes_identical(
            route_batch(net, batch), sequential_outcomes(net, batch)
        )

    @pytest.mark.parametrize("topology", ["indirect-binary-cube", "extra-stage-cube"])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_grid_under_faults(self, topology, seed):
        net = build(topology, 16)
        rng = ensure_rng(seed)
        faults = frozenset(
            (int(rng.integers(1, net.n_stages + 1)), int(rng.integers(net.n_ports)))
            for _ in range(4)
        )
        batch = random_batch(16, rng, size=30)
        batched = route_batch(net, batch, faults=faults)
        assert_outcomes_identical(
            batched, sequential_outcomes(net, batch, faults=faults)
        )
        # The fault grid must actually exercise the failure branch.
        if topology == "indirect-binary-cube":
            assert any(isinstance(o.error, UnroutableError) for o in batched)

    def test_out_of_range_member_message(self):
        net = build("omega", 16)
        batch = [Conference.of([0, 1]), Conference.of([2, 99]), Conference.of([3, 4])]
        batched = route_batch(net, batch)
        oracle = sequential_outcomes(net, batch)
        assert_outcomes_identical(batched, oracle)
        assert not batched[1].ok
        assert type(batched[1].error) is ValueError
        with pytest.raises(ValueError) as excinfo:
            batched[1].unwrap()
        assert excinfo.value.args == oracle[1].error.args

    def test_oversized_conference_falls_back_to_sequential(self):
        net = build("omega", 128)
        big = Conference.of(range(MAX_KERNEL_MEMBERS + 1))
        small = Conference.of([1, 2])
        assert_outcomes_identical(
            route_batch(net, [big, small]),
            sequential_outcomes(net, [big, small]),
        )

    def test_prune_policy_falls_back_to_sequential(self):
        net = build("indirect-binary-cube", 16)
        policy = RoutingPolicy(prune=True)
        batch = random_batch(16, ensure_rng(2), size=8)
        assert_outcomes_identical(
            route_batch(net, batch, policy),
            sequential_outcomes(net, batch, policy),
        )

    def test_engine_parameter_is_gone(self):
        net = build("omega", 16)
        with pytest.raises(TypeError):
            route_batch(net, [Conference.of([0, 1])], engine="legacy")

    def test_empty_batch(self):
        net = build("omega", 16)
        assert route_batch(net, []) == []


class TestConflictEquality:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 9])
    def test_columnar_report_equals_counter_walk(self, topology, seed):
        net = build(topology, 16)
        workload = uniform_partition(16, load=0.9, seed=seed)
        routes = [o.unwrap() for o in route_batch(net, list(workload))]
        columnar = analyze_conflicts_columnar(routes, net.n_stages, net.n_ports)
        reference = counter_walk_report(routes, n_stages=net.n_stages)
        assert columnar == reference  # frozen dataclass: field-for-field

    @pytest.mark.parametrize("seed", [0, 9])
    def test_analyze_conflicts_is_the_columnar_report(self, seed):
        net = build("omega", 16)
        workload = uniform_partition(16, load=0.9, seed=seed)
        routes = [o.unwrap() for o in route_batch(net, list(workload))]
        assert analyze_conflicts(routes) == counter_walk_report(routes)

    def test_empty_routes_need_explicit_stage_count(self):
        with pytest.raises(ValueError):
            analyze_conflicts_columnar([])
        with pytest.raises(ValueError):
            analyze_conflicts([])
        report = analyze_conflicts_columnar([], n_stages=4, n_rows=16)
        assert report.max_multiplicity == 0
        assert report.worst_link is None


class TestAdmissionBatchDifferential:
    def controller(self):
        return AdmissionController(
            ConferenceNetwork.build("indirect-binary-cube", 16, dilation=2)
        )

    def offered(self, seed=0):
        rng = ensure_rng(seed)
        offered = random_batch(16, rng, size=12)
        offered.append(Conference.of([0, 1], offered[0].conference_id))  # dup id
        offered.append(Conference.of(offered[1].members, 90))  # port clash twin
        offered.append(Conference.of([5, 77], 91))  # out of range
        return offered

    @pytest.mark.parametrize("seed", [0, 4])
    def test_batch_replays_sequential_decisions(self, seed):
        offered = self.offered(seed)
        sequential = self.controller()
        expected = []
        for conf in offered:
            try:
                expected.append(("admitted", repr(sequential.try_join(conf))))
            except AdmissionDenied as denial:
                expected.append(("denied", denial.reason, denial.detail))
            except ValueError as exc:
                expected.append(("error", type(exc).__name__, exc.args))

        batched = self.controller()
        outcomes = batched.try_join_batch(offered)
        got = []
        for outcome in outcomes:
            if outcome.ok:
                got.append(("admitted", repr(outcome.route)))
            elif outcome.denial is not None:
                got.append(("denied", outcome.denial.reason, outcome.denial.detail))
            else:
                got.append(("error", type(outcome.error).__name__, outcome.error.args))
        assert got == expected
        assert batched.live_conferences == sequential.live_conferences
        for cid in batched.live_conferences:
            assert repr(batched.route_of(cid)) == repr(sequential.route_of(cid))


class TestHealingBatchDifferential:
    def scenario(self, batched=True):
        """A full fault/repair drill; returns every observable artifact."""
        network = ConferenceNetwork.build("extra-stage-cube", 16, dilation=16)
        healing = SelfHealingController(network, rng=0)
        loop = EventLoop()
        log = []
        offered = random_batch(16, ensure_rng(6), size=10)
        if batched:
            verdicts = [
                (o.status, o.conference_id, o.reason)
                for o in healing.try_join_batch(offered)
            ]
        else:
            # Mirror the batch surface one submission at a time.
            verdicts = []
            for conf in offered:
                try:
                    healing.try_join(conf)
                    verdicts.append(("admitted", conf.conference_id, None))
                except AdmissionDenied as denial:
                    verdicts.append(("lost", conf.conference_id, denial.reason))
        log.append(verdicts)
        for point in [(1, 0), (2, 5), (3, 11)]:
            healing.apply_fault(loop, point)
            log.append(sorted(healing.degraded_conferences))
        for point in [(2, 5), (1, 0)]:
            healing.apply_repair(loop, point)
            log.append(sorted(healing.degraded_conferences))
        routes = {
            cid: repr(healing.route_of(cid)) for cid in healing.live_conferences
        }
        return log, routes

    def test_drill_is_batching_invariant(self):
        assert self.scenario(batched=True) == self.scenario(batched=False)

    def test_batch_engine_parameter_is_gone(self):
        network = ConferenceNetwork.build("omega", 16)
        with pytest.raises(TypeError):
            SelfHealingController(network, batch_engine="bitset")


class TestNetworkFacade:
    def test_route_batch_matches_route_set(self):
        net = ConferenceNetwork.build("baseline", 16, dilation=16)
        groups = [[0, 3], [4, 5, 6], [8, 12, 13]]
        batched = net.route_batch(groups)
        sequential = net.route_set(groups)
        assert [repr(r) for r in batched] == [repr(r) for r in sequential]

    def test_route_batch_raises_first_sequential_error(self):
        net = ConferenceNetwork.build("omega", 16)
        with pytest.raises(ValueError):
            net.route_batch([[0, 1], [2, 99]])
