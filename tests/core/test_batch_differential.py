"""Differential harness: the bitset kernel against the sequential oracle.

``route_batch(..., engine="bitset")`` promises **byte-identity** with
the legacy per-object path, not mere equality: Route dicts built in the
same insertion order, frozensets iterating identically, errors raised
with the same type and message.  This grid holds the two engines side by
side across topologies, tap policies, fault sets, seeds and batch sizes
and compares the strongest observable form of each output — ``repr``
bytes for routes, ``list()`` order for frozensets, ``args`` for errors,
whole outcome/ledger structures for the admission and healing layers.

Byte-identity is what lets the legacy path retire next PR: any place the
kernel's order diverged would surface here as a diff, long before it
could skew an admission message or a worst-case search pick.
"""

import pytest

from repro.core.admission import AdmissionController, AdmissionDenied
from repro.core.batch import (
    MAX_KERNEL_MEMBERS,
    analyze_conflicts_columnar,
    route_batch,
)
from repro.core.conference import Conference
from repro.core.conflict import analyze_conflicts
from repro.core.healing import SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import RoutingPolicy, UnroutableError
from repro.sim.engine import EventLoop
from repro.topology.builders import build
from repro.util.rng import ensure_rng
from repro.workloads.generators import uniform_partition

pytestmark = pytest.mark.tier1

TOPOLOGIES = ("omega", "baseline", "indirect-binary-cube", "extra-stage-cube")


def random_batch(n_ports, rng, size, max_members=6):
    """Non-disjoint conferences (overlap stresses tap/conflict paths)."""
    batch = []
    for cid in range(size):
        k = int(rng.integers(2, max_members + 1))
        members = rng.choice(n_ports, size=min(k, n_ports), replace=False)
        batch.append(Conference.of((int(m) for m in members), cid))
    return batch


def assert_outcomes_identical(bitset, legacy):
    assert len(bitset) == len(legacy)
    for got, want in zip(bitset, legacy):
        assert got.conference == want.conference
        assert got.ok == want.ok
        if want.ok:
            # repr covers every field *and* dict insertion order.
            assert repr(got.route) == repr(want.route)
            # frozenset iteration order is the subtle half of the
            # contract: it drives Counter order and admission messages.
            assert list(got.route.links) == list(want.route.links)
            assert list(got.route.points) == list(want.route.points)
            assert list(got.route.taps) == list(want.route.taps)
        else:
            assert type(got.error) is type(want.error)
            assert got.error.args == want.error.args


class TestRouteBatchGrid:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("tap", ["earliest", "final"])
    @pytest.mark.parametrize("seed", [0, 7])
    def test_grid_topology_tap_seed(self, topology, tap, seed):
        net = build(topology, 16)
        policy = RoutingPolicy(tap_policy=tap)
        rng = ensure_rng(seed)
        batch = random_batch(16, rng, size=24)
        bitset = route_batch(net, batch, policy, engine="bitset")
        legacy = route_batch(net, batch, policy, engine="legacy")
        assert_outcomes_identical(bitset, legacy)

    @pytest.mark.parametrize("size", [1, 3, 40, 200])
    def test_batch_sizes_cross_chunk_boundaries(self, size):
        net = build("indirect-binary-cube", 16)
        rng = ensure_rng(size)
        batch = random_batch(16, rng, size=size)
        assert_outcomes_identical(
            route_batch(net, batch, engine="bitset"),
            route_batch(net, batch, engine="legacy"),
        )

    def test_larger_network(self):
        net = build("omega", 64)
        rng = ensure_rng(3)
        batch = random_batch(64, rng, size=32, max_members=10)
        assert_outcomes_identical(
            route_batch(net, batch, engine="bitset"),
            route_batch(net, batch, engine="legacy"),
        )

    @pytest.mark.parametrize("topology", ["indirect-binary-cube", "extra-stage-cube"])
    @pytest.mark.parametrize("seed", [1, 5])
    def test_grid_under_faults(self, topology, seed):
        net = build(topology, 16)
        rng = ensure_rng(seed)
        faults = frozenset(
            (int(rng.integers(1, net.n_stages + 1)), int(rng.integers(net.n_ports)))
            for _ in range(4)
        )
        batch = random_batch(16, rng, size=30)
        bitset = route_batch(net, batch, faults=faults, engine="bitset")
        legacy = route_batch(net, batch, faults=faults, engine="legacy")
        assert_outcomes_identical(bitset, legacy)
        # The fault grid must actually exercise the failure branch.
        if topology == "indirect-binary-cube":
            assert any(isinstance(o.error, UnroutableError) for o in bitset)

    def test_out_of_range_member_message(self):
        net = build("omega", 16)
        batch = [Conference.of([0, 1]), Conference.of([2, 99]), Conference.of([3, 4])]
        bitset = route_batch(net, batch, engine="bitset")
        legacy = route_batch(net, batch, engine="legacy")
        assert_outcomes_identical(bitset, legacy)
        assert not bitset[1].ok
        assert type(bitset[1].error) is ValueError
        with pytest.raises(ValueError) as excinfo:
            bitset[1].unwrap()
        assert excinfo.value.args == legacy[1].error.args

    def test_oversized_conference_falls_back_to_legacy(self):
        net = build("omega", 128)
        big = Conference.of(range(MAX_KERNEL_MEMBERS + 1))
        small = Conference.of([1, 2])
        assert_outcomes_identical(
            route_batch(net, [big, small], engine="bitset"),
            route_batch(net, [big, small], engine="legacy"),
        )

    def test_prune_policy_falls_back_to_legacy(self):
        net = build("indirect-binary-cube", 16)
        policy = RoutingPolicy(prune=True)
        batch = random_batch(16, ensure_rng(2), size=8)
        assert_outcomes_identical(
            route_batch(net, batch, policy, engine="bitset"),
            route_batch(net, batch, policy, engine="legacy"),
        )

    def test_unknown_engine_rejected(self):
        net = build("omega", 16)
        with pytest.raises(ValueError, match="unknown batch engine"):
            route_batch(net, [Conference.of([0, 1])], engine="simd")

    def test_empty_batch(self):
        net = build("omega", 16)
        assert route_batch(net, [], engine="bitset") == []


class TestConflictEquality:
    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("seed", [0, 9])
    def test_columnar_report_equals_counter_walk(self, topology, seed):
        net = build(topology, 16)
        workload = uniform_partition(16, load=0.9, seed=seed)
        routes = [
            o.unwrap() for o in route_batch(net, list(workload), engine="bitset")
        ]
        columnar = analyze_conflicts_columnar(routes, net.n_stages, net.n_ports)
        counter = analyze_conflicts(routes, n_stages=net.n_stages)
        assert columnar == counter  # frozen dataclass: field-for-field

    def test_empty_routes_need_explicit_stage_count(self):
        with pytest.raises(ValueError):
            analyze_conflicts_columnar([])
        report = analyze_conflicts_columnar([], n_stages=4, n_rows=16)
        assert report.max_multiplicity == 0
        assert report.worst_link is None


class TestAdmissionBatchDifferential:
    def controller(self):
        return AdmissionController(
            ConferenceNetwork.build("indirect-binary-cube", 16, dilation=2)
        )

    def offered(self, seed=0):
        rng = ensure_rng(seed)
        offered = random_batch(16, rng, size=12)
        offered.append(Conference.of([0, 1], offered[0].conference_id))  # dup id
        offered.append(Conference.of(offered[1].members, 90))  # port clash twin
        offered.append(Conference.of([5, 77], 91))  # out of range
        return offered

    @pytest.mark.parametrize("seed", [0, 4])
    def test_batch_replays_sequential_decisions(self, seed):
        offered = self.offered(seed)
        sequential = self.controller()
        expected = []
        for conf in offered:
            try:
                expected.append(("admitted", repr(sequential.try_join(conf))))
            except AdmissionDenied as denial:
                expected.append(("denied", denial.reason, denial.detail))
            except ValueError as exc:
                expected.append(("error", type(exc).__name__, exc.args))

        batched = self.controller()
        outcomes = batched.try_join_batch(offered, engine="bitset")
        got = []
        for outcome in outcomes:
            if outcome.ok:
                got.append(("admitted", repr(outcome.route)))
            elif outcome.denial is not None:
                got.append(("denied", outcome.denial.reason, outcome.denial.detail))
            else:
                got.append(("error", type(outcome.error).__name__, outcome.error.args))
        assert got == expected
        assert batched.live_conferences == sequential.live_conferences
        for cid in batched.live_conferences:
            assert repr(batched.route_of(cid)) == repr(sequential.route_of(cid))

    def test_engines_agree_end_to_end(self):
        offered = self.offered(2)
        via_bitset = self.controller().try_join_batch(offered, engine="bitset")
        via_legacy = self.controller().try_join_batch(offered, engine="legacy")
        for got, want in zip(via_bitset, via_legacy):
            assert got.ok == want.ok
            if got.ok:
                assert repr(got.route) == repr(want.route)
            elif got.denial is not None:
                assert (got.denial.reason, got.denial.detail) == (
                    want.denial.reason,
                    want.denial.detail,
                )
            else:
                assert got.error.args == want.error.args


class TestHealingBatchDifferential:
    def scenario(self, engine):
        """A full fault/repair drill; returns every observable artifact."""
        network = ConferenceNetwork.build("extra-stage-cube", 16, dilation=16)
        healing = SelfHealingController(network, rng=0, batch_engine=engine)
        loop = EventLoop()
        log = []
        outcomes = healing.try_join_batch(random_batch(16, ensure_rng(6), size=10))
        log.append([(o.status, o.conference_id, o.reason) for o in outcomes])
        for point in [(1, 0), (2, 5), (3, 11)]:
            healing.apply_fault(loop, point)
            log.append(sorted(healing.degraded_conferences))
        for point in [(2, 5), (1, 0)]:
            healing.apply_repair(loop, point)
            log.append(sorted(healing.degraded_conferences))
        routes = {
            cid: repr(healing.route_of(cid)) for cid in healing.live_conferences
        }
        return log, routes

    def test_drill_is_engine_invariant(self):
        assert self.scenario("bitset") == self.scenario("legacy")

    def test_unknown_engine_rejected(self):
        network = ConferenceNetwork.build("omega", 16)
        with pytest.raises(ValueError, match="unknown batch engine"):
            SelfHealingController(network, batch_engine="simd")


class TestNetworkFacade:
    def test_route_batch_matches_route_set(self):
        net = ConferenceNetwork.build("baseline", 16, dilation=16)
        groups = [[0, 3], [4, 5, 6], [8, 12, 13]]
        batched = net.route_batch(groups)
        sequential = net.route_set(groups)
        assert [repr(r) for r in batched] == [repr(r) for r in sequential]

    def test_route_batch_raises_first_sequential_error(self):
        net = ConferenceNetwork.build("omega", 16)
        with pytest.raises(ValueError):
            net.route_batch([[0, 1], [2, 99]])
