"""Tests for the self-healing controller and its retry policy."""

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import AdmissionDenied
from repro.core.conference import Conference
from repro.core.healing import RetryPolicy, SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.sim.engine import EventLoop
from repro.sim.faults import FaultInjector, FaultTransition, fault_universe
from repro.util.rng import ensure_rng

N_PORTS = 16


def controller(topology="extra-stage-cube", dilation=N_PORTS, retry=None, seed=0):
    network = ConferenceNetwork.build(topology, N_PORTS, dilation=dilation)
    return SelfHealingController(network, retry=retry, rng=seed)


def population():
    members = [(0, 1), (2, 3), (4, 5, 6, 7), (8, 15), (9, 10)]
    return [Conference.of(m, i) for i, m in enumerate(members)]


class TestRetryPolicy:
    def test_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(max_retries=0)
        with pytest.raises(ValueError):
            RetryPolicy(base_delay=0)
        with pytest.raises(ValueError):
            RetryPolicy(backoff=0.5)
        with pytest.raises(ValueError):
            RetryPolicy(jitter=1.0)

    def test_delay_grows_then_caps(self):
        policy = RetryPolicy(base_delay=1.0, backoff=2.0, max_delay=5.0, jitter=0.0)
        assert [policy.delay(k) for k in range(5)] == [1.0, 2.0, 4.0, 5.0, 5.0]

    def test_jitter_stretches_within_bound(self):
        policy = RetryPolicy(base_delay=1.0, backoff=1.0, jitter=0.5)
        rng = ensure_rng(0)
        delays = [policy.delay(0, rng) for _ in range(50)]
        assert all(1.0 <= d < 1.5 for d in delays)
        assert len(set(delays)) > 1


class TestAdmissionUnderFaults:
    def test_join_routes_around_live_faults(self):
        healing = controller()
        loop = EventLoop()
        healing.apply_fault(loop, (1, 0))
        route = healing.try_join(Conference.of([0, 1], 0))
        assert (1, 0) not in route.points

    def test_join_denied_with_fault_reason(self):
        healing = controller("indirect-binary-cube")
        healing.apply_fault(EventLoop(), (1, 0))
        with pytest.raises(AdmissionDenied) as excinfo:
            healing.try_join(Conference.of([0, 1], 0))
        assert excinfo.value.reason == "fault"

    def test_join_denied_on_port_clash(self):
        healing = controller()
        healing.try_join(Conference.of([0, 1], 0))
        with pytest.raises(AdmissionDenied) as excinfo:
            healing.try_join(Conference.of([1, 2], 1))
        assert excinfo.value.reason == "ports"

    def test_join_under_fault_is_marked_degraded(self):
        healing = controller()
        healing.apply_fault(EventLoop(), (1, 0))
        healing.try_join(Conference.of([0, 1], 0))
        assert healing.degraded_conferences == {0}


class TestDegradationLadder:
    def test_fault_on_route_heals_without_drop(self):
        healing = controller()
        healing.try_join(Conference.of([0, 1], 0))
        loop = EventLoop()
        healing.apply_fault(loop, (1, 0))
        assert healing.live_conferences == (0,)
        assert (1, 0) not in healing.route_of(0).points
        assert healing.degraded_conferences == {0}
        assert healing.stats.dropped_total == 0
        assert healing.stats.tap_move_events + healing.stats.reroutes == 1

    def test_unrelated_fault_is_ignored(self):
        healing = controller()
        route = healing.try_join(Conference.of([0, 1], 0))
        dead = next(p for p in fault_universe(healing.network.topology)
                    if p not in route.points)
        healing.apply_fault(EventLoop(), dead)
        assert healing.route_of(0) == route
        assert not healing.degraded_conferences

    def test_repair_restores_healthy_route(self):
        healing = controller()
        healthy = healing.try_join(Conference.of([0, 1], 0))
        loop = EventLoop()
        healing.apply_fault(loop, (1, 0))
        assert healing.route_of(0) != healthy
        healing.apply_repair(loop, (1, 0))
        assert healing.route_of(0) == healthy
        assert not healing.degraded_conferences
        assert not healing.current_faults

    def test_unroutable_fault_drops_the_call(self):
        healing = controller("indirect-binary-cube")  # unique paths: fatal
        lost = []
        healing.on_lost = lambda loop, conf, cause: lost.append((conf.conference_id, cause))
        healing.try_join(Conference.of([0, 1], 0))
        healing.apply_fault(EventLoop(), (1, 0))
        assert healing.live_conferences == ()
        assert healing.stats.drops["fault"] == 1
        assert healing.stats.lost_calls == 1
        assert lost == [(0, "fault")]

    def test_fault_idempotent_and_repair_of_healthy_noop(self):
        healing = controller()
        healing.try_join(Conference.of([0, 1], 0))
        loop = EventLoop()
        healing.apply_fault(loop, (1, 0))
        healing.apply_fault(loop, (1, 0))
        assert healing.stats.link_failures == 1
        healing.apply_repair(loop, (2, 0))
        assert healing.current_faults == {(1, 0)}


class TestDuplicateTransitions:
    # Regression suite: duplicate/overlapping transitions must be
    # *explicit* no-ops — no double accounting, no plan churn, no
    # recovery samples — whether or not protection is armed.

    def snapshot(self, healing):
        s = healing.stats
        return (
            s.link_failures, s.link_repairs, s.dropped_total, s.reroutes,
            s.tap_move_events, s.plan_hits, s.plan_misses, s.plan_stale,
            s.recovery_samples,
        )

    @pytest.mark.parametrize("protection", [0, 4])
    def test_duplicate_fail_changes_nothing(self, protection):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        healing = SelfHealingController(network, rng=0, protection=protection)
        route = healing.try_join(Conference.of([0, 1, 2], 0))
        loop = EventLoop()
        point = sorted(route.links)[0]
        healing.apply_fault(loop, point)
        before = self.snapshot(healing)
        routes = {cid: healing.route_of(cid) for cid in healing.live_conferences}
        plans = healing.plan_store.plans_of(0) if protection else None
        healing.apply_fault(loop, point)  # exact duplicate
        assert self.snapshot(healing) == before
        assert {cid: healing.route_of(cid) for cid in healing.live_conferences} == routes
        if protection:
            assert healing.plan_store.plans_of(0) == plans

    @pytest.mark.parametrize("protection", [0, 4])
    def test_repair_of_never_failed_point_changes_nothing(self, protection):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        healing = SelfHealingController(network, rng=0, protection=protection)
        healing.try_join(Conference.of([0, 1, 2], 0))
        loop = EventLoop()
        before = self.snapshot(healing)
        plans = healing.plan_store.plans_of(0) if protection else None
        healing.apply_repair(loop, (1, 5))  # never failed
        assert healing.stats.link_repairs == 0
        assert self.snapshot(healing) == before
        assert healing.current_faults == frozenset()
        if protection:
            assert healing.plan_store.plans_of(0) == plans

    def test_stale_plan_falls_back_reactively(self):
        # A plan whose base fault set no longer matches must never be
        # used: the controller records ``stale`` and takes the reactive
        # path, landing on the same outcome as an unprotected twin.
        from repro.core.routing import route_conference

        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        prot = SelfHealingController(network, rng=0, protection=64)
        bare = SelfHealingController(
            ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS), rng=0
        )
        for ctl in (prot, bare):
            ctl.try_join(Conference.of([0, 1, 2, 3], 0))
        loop = EventLoop()
        first = sorted(prot.route_of(0).links)[0]
        for ctl in (prot, bare):
            ctl.apply_fault(loop, first)
        assert prot.stats.plan_hits == 1
        # Overwrite the (correctly re-cut) plans with ones planned under
        # the pre-fault base — exactly what an overlapping fault the
        # planner never anticipated looks like to the lookup.
        route = prot.route_of(0)
        prot.plan_store.protect(
            route.conference,
            route,
            frozenset(),  # stale base: pretends no fault is live
            lambda conf, faults: route_conference(
                network.topology, conf, network.policy, faults=faults
            ),
        )
        second = sorted(route.links)[0]
        for ctl in (prot, bare):
            ctl.apply_fault(loop, second)
        assert prot.stats.plan_stale == 1
        assert prot.live_conferences == bare.live_conferences
        for cid in prot.live_conferences:
            assert prot.route_of(cid) == bare.route_of(cid)


class TestRetries:
    def test_dropped_call_restored_after_repair(self):
        retry = RetryPolicy(max_retries=10, base_delay=1.0, backoff=1.0, jitter=0.0)
        healing = controller("indirect-binary-cube", retry=retry)
        restored = []
        healing.on_restore = lambda loop, route: restored.append(loop.now)
        healing.try_join(Conference.of([0, 1], 0))
        script = [
            FaultTransition(1.0, (1, 0), True),
            FaultTransition(5.5, (1, 0), False),
        ]
        injector = FaultInjector(healing.network.topology, script=script)
        healing.attach(injector)
        loop = EventLoop()
        injector.start(loop)
        loop.run(until=20.0)
        assert healing.live_conferences == (0,)
        assert healing.down_conferences == frozenset()
        assert healing.stats.dropped_total == 1
        assert healing.stats.restores == 1
        assert healing.stats.lost_calls == 0
        # Retries fire every 1.0 from the drop at t=1; first success
        # lands just after the repair at t=5.5.
        assert restored == [6.0]

    def test_retry_budget_exhausts_to_lost(self):
        retry = RetryPolicy(max_retries=2, base_delay=1.0, backoff=1.0, jitter=0.0)
        healing = controller("indirect-binary-cube", retry=retry)
        lost = []
        healing.on_lost = lambda loop, conf, cause: lost.append(cause)
        healing.try_join(Conference.of([0, 1], 0))
        injector = FaultInjector(
            healing.network.topology, script=[FaultTransition(1.0, (1, 0), True)]
        )
        healing.attach(injector)
        loop = EventLoop()
        injector.start(loop)
        loop.run(until=20.0)
        assert lost == ["retry-exhausted"]
        assert healing.stats.lost_calls == 1
        assert healing.stats.retries_exhausted == 1

    def test_submit_retries_blocked_arrival_until_ports_free(self):
        retry = RetryPolicy(max_retries=10, base_delay=1.0, backoff=1.0, jitter=0.0)
        healing = controller(retry=retry)
        healing.try_join(Conference.of([0, 1], 0))
        admitted = []
        loop = EventLoop()
        loop.schedule(2.5, lambda lp: healing.leave(0, now=lp.now))
        result = healing.submit(
            loop,
            Conference.of([1, 2], 1),
            on_admitted=lambda lp, route: admitted.append(lp.now),
        )
        assert not result and result.pending  # ports clash right now, retrying
        assert result.reason == "ports"
        loop.run(until=20.0)
        assert admitted == [3.0]
        assert healing.live_conferences == (1,)
        assert healing.stats.retries_succeeded == 1

    def test_submit_without_retry_loses_immediately(self):
        healing = controller(retry=None)
        healing.try_join(Conference.of([0, 1], 0))
        lost = []
        loop = EventLoop()
        outcome = healing.submit(
            loop,
            Conference.of([1, 2], 1),
            on_lost=lambda lp, conf, cause: lost.append(cause),
        )
        assert lost == ["ports"]
        assert (outcome.ok, outcome.status, outcome.reason) == (False, "lost", "ports")

    def test_submit_admits_immediately_when_clear(self):
        healing = controller()
        loop = EventLoop()
        outcome = healing.submit(loop, Conference.of([0, 1], 0))
        assert outcome.ok and outcome.route is not None
        assert outcome.as_dict()["ok"] is True
        assert healing.live_conferences == (0,)


def universe_points():
    net = ConferenceNetwork.build("extra-stage-cube", N_PORTS).topology
    return fault_universe(net)


class TestHealingProperties:
    @settings(max_examples=40, deadline=None)
    @given(
        toggles=st.lists(
            st.sampled_from(universe_points()), min_size=1, max_size=12
        )
    )
    def test_ledger_stays_consistent_with_live_routes(self, toggles):
        """The satellite property: after any fault/repair sequence, the
        inner admission ledger (link loads, ports in use) equals what
        recomputing it from the surviving live routes gives."""
        healing = controller()
        for conf in population():
            healing.try_join(conf)
        loop = EventLoop()
        for point in toggles:
            if point in healing.current_faults:
                healing.apply_repair(loop, point)
            else:
                healing.apply_fault(loop, point)
        expected = Counter()
        ports = set()
        for cid in healing.live_conferences:
            route = healing.route_of(cid)
            expected.update(route.links)
            ports.update(route.conference.members)
        for point in universe_points():
            assert healing.link_load(point) == expected[point]
        assert healing.admission.ports_in_use == frozenset(ports)

    @settings(max_examples=40, deadline=None)
    @given(
        toggles=st.lists(
            st.sampled_from(universe_points()), min_size=1, max_size=12
        )
    )
    def test_fully_repaired_equals_healthy(self, toggles):
        """The satellite property: once every fault is repaired, the
        surviving conferences sit on exactly the routes a never-faulted
        controller builds, and the ledgers agree link for link."""
        healing = controller()
        for conf in population():
            healing.try_join(conf)
        loop = EventLoop()
        for point in toggles:
            if point in healing.current_faults:
                healing.apply_repair(loop, point)
            else:
                healing.apply_fault(loop, point)
        for point in sorted(healing.current_faults):
            healing.apply_repair(loop, point)
        assert not healing.current_faults
        assert not healing.degraded_conferences
        fresh = controller()
        for conf in population():
            if conf.conference_id in healing.live_conferences:
                fresh.try_join(conf)
        for cid in healing.live_conferences:
            assert healing.route_of(cid) == fresh.route_of(cid)
        for point in universe_points():
            assert healing.link_load(point) == fresh.link_load(point)
