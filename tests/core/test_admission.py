"""Tests for the buddy allocator, aligned placement and admission control."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.admission import (
    AdmissionController,
    AdmissionDenied,
    BuddyAllocator,
    place_aligned,
)
from repro.core.conference import Conference
from repro.core.network import ConferenceNetwork


class TestBuddyAllocator:
    def test_allocates_aligned_blocks(self):
        alloc = BuddyAllocator(16)
        block = alloc.allocate(3)
        assert len(block) == 4
        assert block.start % 4 == 0

    def test_exhaustion_raises(self):
        alloc = BuddyAllocator(8)
        alloc.allocate(8)
        with pytest.raises(MemoryError):
            alloc.allocate(1)

    def test_release_then_reallocate(self):
        alloc = BuddyAllocator(8)
        a = alloc.allocate(4)
        alloc.allocate(4)
        alloc.release(a.start)
        c = alloc.allocate(4)
        assert c.start == a.start

    def test_release_unknown_base(self):
        with pytest.raises(KeyError):
            BuddyAllocator(8).release(0)

    def test_size_validation(self):
        alloc = BuddyAllocator(8)
        with pytest.raises(ValueError):
            alloc.allocate(0)
        with pytest.raises(ValueError):
            alloc.allocate(9)

    def test_free_capacity_tracking(self):
        alloc = BuddyAllocator(16)
        assert alloc.free_capacity() == 16
        alloc.allocate(4)
        assert alloc.free_capacity() == 12
        assert alloc.largest_free_exponent() == 3

    @settings(max_examples=60, deadline=None)
    @given(st.lists(st.integers(1, 8), min_size=1, max_size=20), st.randoms())
    def test_allocator_invariants_under_churn(self, sizes, pyrandom):
        """Property: live blocks never overlap; freeing everything
        coalesces back to one max-size block."""
        alloc = BuddyAllocator(32)
        live: dict[int, range] = {}
        for s in sizes:
            if live and pyrandom.random() < 0.4:
                base = pyrandom.choice(sorted(live))
                alloc.release(base)
                del live[base]
            try:
                block = alloc.allocate(s)
            except MemoryError:
                continue
            for other in live.values():
                assert not (set(block) & set(other)), "overlapping allocations"
            live[block.start] = block
        used = sum(len(b) for b in live.values())
        # free_capacity counts whole blocks (internal fragmentation is
        # invisible to it), so it complements allocated block sizes.
        rounded = sum(1 << (len(b) - 1).bit_length() for b in live.values())
        assert alloc.free_capacity() == 32 - rounded
        for base in sorted(live):
            alloc.release(base)
        assert alloc.largest_free_exponent() == 5
        assert alloc.free_capacity() == 32

    def test_allocations_snapshot(self):
        alloc = BuddyAllocator(16)
        b = alloc.allocate(2)
        assert alloc.allocations() == {b.start: 1}


class TestPlaceAligned:
    def test_blocks_are_disjoint_and_aligned(self):
        cs = place_aligned(32, [4, 4, 2, 3, 5])
        assert len(cs) == 5
        for conf in cs:
            k = conf.enclosing_block_exponent(32)
            assert (1 << k) >= conf.size
            # Members occupy a prefix of an aligned block.
            assert conf.members[0] % (1 << k) == 0 or conf.size == 1

    def test_preserves_request_order(self):
        cs = place_aligned(32, [2, 8, 2])
        assert cs.sizes() == (2, 8, 2)

    def test_overflow_raises(self):
        with pytest.raises(MemoryError):
            place_aligned(8, [5, 5])

    def test_aligned_sets_are_conflict_free_on_cube(self):
        """The Yang-2001 guarantee: block placement + cube = no conflicts."""
        network = ConferenceNetwork.build("indirect-binary-cube", 64)
        cs = place_aligned(64, [4, 4, 8, 2, 2, 3, 6, 16])
        routes = network.route_set(cs)
        assert network.conflicts(routes).conflict_free


class TestAdmissionController:
    def make(self, dilation=1, topology="indirect-binary-cube", ports=16):
        return AdmissionController(
            ConferenceNetwork.build(topology, ports, dilation=dilation)
        )

    def test_join_and_leave_cycle(self):
        ctl = self.make(dilation=4)
        route = ctl.try_join(Conference.of([0, 3], conference_id=1))
        assert ctl.live_conferences == (1,)
        assert ctl.peak_load() == 1
        assert all(ctl.link_load(link) == 1 for link in route.links)
        ctl.leave(1)
        assert ctl.live_conferences == ()
        assert ctl.peak_load() == 0

    def test_capacity_denial(self):
        ctl = self.make(dilation=1)
        ctl.try_join(Conference.of([0, 3], conference_id=1))
        with pytest.raises(AdmissionDenied) as exc:
            ctl.try_join(Conference.of([1, 2], conference_id=2))
        assert exc.value.reason == "capacity"
        # The denied conference left no residue.
        assert ctl.live_conferences == (1,)

    def test_port_denial(self):
        ctl = self.make(dilation=8)
        ctl.try_join(Conference.of([0, 3], conference_id=1))
        with pytest.raises(AdmissionDenied) as exc:
            ctl.try_join(Conference.of([3, 4], conference_id=2))
        assert exc.value.reason == "ports"

    def test_duplicate_id_denied(self):
        ctl = self.make(dilation=8)
        ctl.try_join(Conference.of([0, 3], conference_id=1))
        with pytest.raises(AdmissionDenied):
            ctl.try_join(Conference.of([8, 9], conference_id=1))

    def test_leave_unknown(self):
        with pytest.raises(KeyError):
            self.make().leave(42)

    def test_snapshot_is_valid_set(self):
        ctl = self.make(dilation=8)
        ctl.try_join(Conference.of([0, 3], conference_id=1))
        ctl.try_join(Conference.of([8, 9], conference_id=2))
        snap = ctl.snapshot()
        assert len(snap) == 2
        assert snap.occupied_ports == frozenset({0, 3, 8, 9})

    def test_capacity_freed_after_leave(self):
        ctl = self.make(dilation=1)
        ctl.try_join(Conference.of([0, 3], conference_id=1))
        ctl.leave(1)
        ctl.try_join(Conference.of([1, 2], conference_id=2))
        assert ctl.live_conferences == (2,)
