"""Stateful property tests (hypothesis RuleBasedStateMachine).

Long random interleavings of operations against simple reference
models: the buddy allocator against a set-based overlap checker, and
the admission controller against recomputed-from-scratch link loads.
"""

from collections import Counter

from hypothesis import settings
from hypothesis import strategies as st
from hypothesis.stateful import RuleBasedStateMachine, invariant, precondition, rule

from repro.core.admission import AdmissionController, AdmissionDenied, BuddyAllocator
from repro.core.conference import Conference
from repro.core.network import ConferenceNetwork


class BuddyMachine(RuleBasedStateMachine):
    """The buddy allocator never overlaps, never leaks, always coalesces."""

    def __init__(self):
        super().__init__()
        self.alloc = BuddyAllocator(64)
        self.live: dict[int, range] = {}

    @rule(size=st.integers(1, 32))
    def allocate(self, size):
        try:
            block = self.alloc.allocate(size)
        except MemoryError:
            # Denial is only legal when no free block is big enough.
            need = max(0, (size - 1).bit_length())
            assert self.alloc.largest_free_exponent() < need
            return
        for other in self.live.values():
            assert block.stop <= other.start or other.stop <= block.start
        self.live[block.start] = block

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def release(self, data):
        base = data.draw(st.sampled_from(sorted(self.live)))
        self.alloc.release(base)
        del self.live[base]

    @invariant()
    def capacity_accounts_for_block_sizes(self):
        used = sum(len(b) for b in self.live.values())
        assert self.alloc.free_capacity() == 64 - used

    @invariant()
    def empty_means_fully_coalesced(self):
        if not self.live:
            assert self.alloc.largest_free_exponent() == 6


class AdmissionMachine(RuleBasedStateMachine):
    """The admission controller's ledger always equals a from-scratch
    recomputation, and capacity is never exceeded."""

    def __init__(self):
        super().__init__()
        self.network = ConferenceNetwork.build("indirect-binary-cube", 16, dilation=2)
        self.ctl = AdmissionController(self.network)
        self.next_id = 0
        self.live: dict[int, Conference] = {}

    @rule(data=st.data())
    def join(self, data):
        free = sorted(set(range(16)) - {p for c in self.live.values() for p in c.members})
        if len(free) < 2:
            return
        size = data.draw(st.integers(2, min(4, len(free))))
        members = data.draw(
            st.lists(st.sampled_from(free), min_size=size, max_size=size, unique=True)
        )
        conf = Conference.of(members, conference_id=self.next_id)
        self.next_id += 1
        try:
            self.ctl.try_join(conf)
        except AdmissionDenied as denial:
            assert denial.reason == "capacity"  # ports were free by construction
            return
        self.live[conf.conference_id] = conf

    @precondition(lambda self: self.live)
    @rule(data=st.data())
    def leave(self, data):
        cid = data.draw(st.sampled_from(sorted(self.live)))
        self.ctl.leave(cid)
        del self.live[cid]

    @invariant()
    def ledger_matches_recomputation(self):
        expected = Counter()
        for conf in self.live.values():
            expected.update(self.network.route(conf).links)
        for link, load in expected.items():
            assert self.ctl.link_load(link) == load
        assert self.ctl.peak_load() == max(expected.values(), default=0)

    @invariant()
    def capacity_never_exceeded(self):
        assert self.ctl.peak_load() <= self.network.dilation

    @invariant()
    def live_sets_agree(self):
        assert set(self.ctl.live_conferences) == set(self.live)


TestBuddyMachine = BuddyMachine.TestCase
TestBuddyMachine.settings = settings(max_examples=40, stateful_step_count=30, deadline=None)

TestAdmissionMachine = AdmissionMachine.TestCase
TestAdmissionMachine.settings = settings(max_examples=25, stateful_step_count=25, deadline=None)
