"""Tests for member churn (join/leave on live conferences)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.churn import apply_churn, join_member, leave_member
from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build

TOPOLOGIES = sorted(PAPER_TOPOLOGIES)


class TestJoin:
    def test_in_block_join_is_hitless_on_cube(self):
        """Growing inside the enclosing block keeps everyone's tap."""
        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of([0, 3]))  # block {0..3}
        result = join_member(net, route, 1)
        assert result.hitless
        assert result.after.conference.members == (0, 1, 3)
        assert not result.links_removed  # the old tree is a subtree

    def test_block_growing_join_moves_every_tap_on_cube(self):
        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of([0, 1]))  # block {0,1}, K=1
        result = join_member(net, route, 8)  # grows the block to {0..15}
        assert set(result.taps_moved) == {0, 1}
        for old, new in result.taps_moved.values():
            assert new > old

    def test_join_existing_member_rejected(self):
        net = build("omega", 16)
        route = route_conference(net, Conference.of([0, 1]))
        with pytest.raises(ValueError, match="already a member"):
            join_member(net, route, 1)

    def test_diff_is_consistent(self):
        net = build("baseline", 16)
        route = route_conference(net, Conference.of([2, 9]))
        result = join_member(net, route, 13)
        assert result.links_added == result.after.links - result.before.links
        assert result.links_removed == result.before.links - result.after.links
        assert result.reconfigured_links == len(result.links_added) + len(result.links_removed)


class TestLeave:
    def test_leave_shrinks_route(self):
        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of([0, 1, 8]))
        result = leave_member(net, route, 8)
        assert result.after.conference.members == (0, 1)
        assert result.after.depth < result.before.depth
        assert result.links_removed and not result.links_added

    def test_leave_unknown_member(self):
        net = build("omega", 16)
        route = route_conference(net, Conference.of([0, 1]))
        with pytest.raises(ValueError, match="not a member"):
            leave_member(net, route, 5)

    def test_leave_last_member_rejected(self):
        net = build("omega", 16)
        route = route_conference(net, Conference.of([4]))
        with pytest.raises(ValueError, match="last member"):
            leave_member(net, route, 4)


class TestChurnInvariants:
    @settings(max_examples=60, deadline=None)
    @given(
        name=st.sampled_from(TOPOLOGIES),
        members=st.sets(st.integers(0, 15), min_size=2, max_size=6),
        data=st.data(),
    )
    def test_join_then_leave_round_trips(self, name, members, data):
        net = build(name, 16)
        route = route_conference(net, Conference.of(members))
        outsiders = sorted(set(range(16)) - set(members))
        newcomer = data.draw(st.sampled_from(outsiders))
        joined = join_member(net, route, newcomer)
        left = leave_member(net, joined.after, newcomer)
        assert left.after.links == route.links
        assert left.after.taps == route.taps

    @settings(max_examples=40, deadline=None)
    @given(
        name=st.sampled_from(TOPOLOGIES),
        members=st.sets(st.integers(0, 15), min_size=2, max_size=6),
    )
    def test_churn_preserves_delivery(self, name, members):
        net = build(name, 16)
        route = route_conference(net, Conference.of(members))
        newcomer = min(set(range(16)) - set(members))
        result = join_member(net, route, newcomer)
        full = result.after.conference.full_mask
        for port, t in result.after.taps.items():
            assert result.after.mask_at(t, port) == full

    def test_apply_churn_preserves_id(self):
        net = build("omega", 16)
        route = route_conference(net, Conference.of([0, 1], conference_id=42))
        result = apply_churn(net, route, [0, 1, 2])
        assert result.after.conference.conference_id == 42
