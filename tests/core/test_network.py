"""Tests for the ConferenceNetwork facade."""

import pytest

from repro.core.conference import Conference, ConferenceSet
from repro.core.network import ConferenceNetwork
from repro.core.routing import RoutingPolicy, TapPolicy
from repro.switching.fabric import CapacityExceeded
from repro.topology.builders import build


class TestConstruction:
    def test_build_by_name(self):
        net = ConferenceNetwork.build("omega", 16)
        assert net.n_ports == 16
        assert net.n_stages == 4
        assert net.topology.name == "omega"
        assert net.relay_enabled
        assert "omega" in repr(net)

    def test_explicit_topology(self):
        net = ConferenceNetwork(build("baseline", 8), dilation=2)
        assert net.dilation == 2

    def test_relay_off_forces_final_taps(self):
        net = ConferenceNetwork.build("omega", 8, relay_enabled=False)
        assert net.policy.tap_policy is TapPolicy.FINAL

    def test_relay_off_with_early_policy_rejected(self):
        with pytest.raises(ValueError, match="relay"):
            ConferenceNetwork.build(
                "omega", 8, policy=RoutingPolicy(tap_policy=TapPolicy.EARLIEST),
                relay_enabled=False,
            )


class TestRouting:
    def test_route_accepts_bare_ports(self):
        net = ConferenceNetwork.build("indirect-binary-cube", 16)
        route = net.route([3, 5])
        assert route.conference.members == (3, 5)

    def test_route_set_preserves_order(self):
        net = ConferenceNetwork.build("indirect-binary-cube", 16)
        routes = net.route_set([[0, 1], [4, 5]])
        assert [r.conference.members for r in routes] == [(0, 1), (4, 5)]

    def test_coerce_rejects_wrong_size_set(self):
        net = ConferenceNetwork.build("omega", 16)
        with pytest.raises(ValueError, match="sized for"):
            net.route_set(ConferenceSet.of(8, [[0, 1]]))

    def test_realize_reports_everything(self):
        net = ConferenceNetwork.build("omega", 16, dilation=4)
        result = net.realize([[0, 5, 9], [1, 2]])
        assert result.ok
        assert result.conflicts.n_conferences == 2
        assert len(result.routes) == 2
        assert set(result.delivery.delivered) == {0, 1}

    def test_realize_respects_dilation(self):
        net = ConferenceNetwork.build("indirect-binary-cube", 8, dilation=1)
        with pytest.raises(CapacityExceeded):
            net.realize([[0, 3], [1, 2]])
        wide = ConferenceNetwork.build("indirect-binary-cube", 8, dilation=2)
        assert wide.realize([[0, 3], [1, 2]]).ok

    def test_realize_without_relay(self):
        net = ConferenceNetwork.build("omega", 8, dilation=8, relay_enabled=False)
        result = net.realize([[0, 4], [1, 5]])
        assert result.ok
        for route in result.routes:
            assert set(route.taps.values()) == {net.n_stages}
