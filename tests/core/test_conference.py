"""Tests for conference and conference-set abstractions."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.conference import Conference, ConferenceSet


class TestConference:
    def test_members_sorted_and_deduped_rejected(self):
        conf = Conference.of([5, 1, 3])
        assert conf.members == (1, 3, 5)
        with pytest.raises(ValueError, match="duplicate"):
            Conference.of([1, 1])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            Conference.of([])

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            Conference.of([-1, 2])

    def test_size_and_masks(self):
        conf = Conference.of([2, 4, 9])
        assert conf.size == 3
        assert conf.full_mask == 0b111
        assert conf.member_set == frozenset({2, 4, 9})

    def test_member_index(self):
        conf = Conference.of([2, 4, 9])
        assert conf.member_index(4) == 1
        with pytest.raises(ValueError):
            conf.member_index(5)

    def test_enclosing_block(self):
        assert Conference.of([0, 3]).enclosing_block_exponent(8) == 2
        assert Conference.of([3, 4]).enclosing_block_exponent(8) == 3
        assert Conference.of([6]).enclosing_block_exponent(8) == 0

    def test_enclosing_block_out_of_range(self):
        with pytest.raises(ValueError):
            Conference.of([9]).enclosing_block_exponent(8)

    def test_block_alignment(self):
        assert Conference.of([4, 5, 6, 7]).is_block_aligned(8)
        assert not Conference.of([4, 5, 7]).is_block_aligned(8)
        assert Conference.of([3]).is_block_aligned(8)

    def test_spans(self):
        assert list(Conference.of([5, 6]).spans(8)) == [4, 5, 6, 7]

    @given(st.sets(st.integers(0, 63), min_size=1, max_size=10))
    def test_spans_contains_members(self, members):
        conf = Conference.of(members)
        span = conf.spans(64)
        assert all(m in span for m in conf.members)
        assert len(span) == 1 << conf.enclosing_block_exponent(64)


class TestConferenceSet:
    def test_disjointness_enforced(self):
        with pytest.raises(ValueError, match="overlaps"):
            ConferenceSet.of(8, [[0, 1], [1, 2]])

    def test_duplicate_ids_rejected(self):
        confs = (Conference.of([0], 1), Conference.of([1], 1))
        with pytest.raises(ValueError, match="duplicate conference id"):
            ConferenceSet(8, confs)

    def test_out_of_range_member(self):
        with pytest.raises(ValueError):
            ConferenceSet.of(8, [[0, 8]])

    def test_auto_ids_and_iteration(self):
        cs = ConferenceSet.of(8, [[0, 1], [4, 5]])
        assert [c.conference_id for c in cs] == [0, 1]
        assert len(cs) == 2
        assert cs[1].members == (4, 5)

    def test_occupied_and_load(self):
        cs = ConferenceSet.of(8, [[0, 1], [4, 5]])
        assert cs.occupied_ports == frozenset({0, 1, 4, 5})
        assert cs.load == pytest.approx(0.5)
        assert cs.sizes() == (2, 2)

    def test_add_remove(self):
        cs = ConferenceSet.of(8, [[0, 1]])
        bigger = cs.add(Conference.of([2, 3], conference_id=9))
        assert len(bigger) == 2
        smaller = bigger.remove(9)
        assert len(smaller) == 1
        with pytest.raises(KeyError):
            smaller.remove(9)

    def test_add_overlapping_rejected(self):
        cs = ConferenceSet.of(8, [[0, 1]])
        with pytest.raises(ValueError):
            cs.add(Conference.of([1, 2], conference_id=5))

    def test_empty_set_is_valid(self):
        cs = ConferenceSet.of(8, [])
        assert len(cs) == 0
        assert cs.load == 0.0

    def test_n_stages(self):
        assert ConferenceSet.of(32, []).n_stages == 5

    @given(st.permutations(range(16)), st.integers(2, 5))
    def test_partitions_always_valid(self, perm, k):
        groups = [perm[i::k] for i in range(k)]
        cs = ConferenceSet.of(16, [g for g in groups if g])
        assert cs.occupied_ports == frozenset(range(16))
