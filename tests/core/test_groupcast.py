"""Tests for general group connections (multicast / many-to-many)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import Conference
from repro.core.conflict import analyze_conflicts
from repro.core.groupcast import GroupConnection, route_group
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build

TOPOLOGIES = sorted(PAPER_TOPOLOGIES)


class TestGroupConnection:
    def test_constructors(self):
        mc = GroupConnection.multicast(3, [0, 5, 9])
        assert mc.is_multicast and not mc.is_conference
        assert mc.senders == (3,)
        conf = GroupConnection.conference([4, 2, 7])
        assert conf.is_conference
        assert conf.senders == conf.receivers == (2, 4, 7)

    def test_validation(self):
        with pytest.raises(ValueError):
            GroupConnection((), (1,))
        with pytest.raises(ValueError):
            GroupConnection((1,), ())

    def test_ports_union(self):
        g = GroupConnection((1, 2), (2, 3))
        assert g.ports == frozenset({1, 2, 3})

    def test_duplicates_collapsed(self):
        g = GroupConnection((1, 1, 2), (3, 3))
        assert g.senders == (1, 2)


class TestRouteGroup:
    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_multicast_delivers_source_to_every_destination(self, name):
        net = build(name, 16)
        route = route_group(net, GroupConnection.multicast(5, [0, 7, 12]))
        for dest in (0, 7, 12):
            t = route.taps[dest]
            assert route.mask_at(t, dest) == 1  # the single sender's bit

    @pytest.mark.parametrize("name", TOPOLOGIES)
    def test_conference_case_matches_route_conference(self, name):
        net = build(name, 16)
        members = (1, 6, 11, 12)
        as_group = route_group(net, GroupConnection.conference(members))
        as_conf = route_conference(net, Conference.of(members))
        assert as_group.links == as_conf.links
        assert as_group.taps == as_conf.taps

    def test_disjoint_senders_receivers(self):
        net = build("indirect-binary-cube", 16)
        g = GroupConnection(senders=(0, 1), receivers=(8, 9))
        route = route_group(net, g)
        full = 0b11
        for r in (8, 9):
            assert route.mask_at(route.taps[r], r) == full
        # Senders that are not receivers get no tap.
        assert set(route.taps) == {8, 9}

    def test_final_tap_mode(self):
        net = build("omega", 16)
        route = route_group(net, GroupConnection.multicast(0, [3, 9]), earliest_taps=False)
        assert set(route.taps.values()) == {4}

    def test_out_of_range_rejected(self):
        net = build("omega", 8)
        with pytest.raises(ValueError):
            route_group(net, GroupConnection.multicast(0, [8]))

    @settings(max_examples=50, deadline=None)
    @given(
        name=st.sampled_from(TOPOLOGIES),
        senders=st.sets(st.integers(0, 15), min_size=1, max_size=5),
        receivers=st.sets(st.integers(0, 15), min_size=1, max_size=5),
    )
    def test_every_receiver_hears_every_sender(self, name, senders, receivers):
        net = build(name, 16)
        route = route_group(net, GroupConnection(tuple(senders), tuple(receivers)))
        full = (1 << len(route.connection.senders)) - 1
        for r, t in route.taps.items():
            assert route.mask_at(t, r) == full

    def test_multicast_uses_fewer_links_than_conference(self):
        """A one-way connection needs no combining fan-in from listeners."""
        net = build("indirect-binary-cube", 32)
        ports = (0, 9, 18, 27)
        mc = route_group(net, GroupConnection.multicast(0, ports[1:]))
        conf = route_conference(net, Conference.of(ports))
        assert mc.n_links < conf.n_links


class TestMixedTrafficConflicts:
    def test_group_routes_interoperate_with_conflict_analysis(self):
        net = build("indirect-binary-cube", 16)
        conf_route = route_conference(net, Conference.of((0, 3), conference_id=0))
        mc_route = route_group(net, GroupConnection.multicast(1, [2], connection_id=1))
        report = analyze_conflicts([conf_route, mc_route], n_stages=net.n_stages)
        assert report.n_conferences == 2
        assert report.max_multiplicity >= 1


class TestGroupFabricSimulation:
    def test_fabric_delivers_group_connections_end_to_end(self):
        """The hardware simulator verifies multicast delivery too: every
        receiver hears exactly the sender set."""
        from repro.switching.fabric import Fabric

        net = build("indirect-binary-cube", 16)
        fabric = Fabric(net, dilation=4)
        routes = [
            route_group(net, GroupConnection.multicast(0, [4, 5, 6], connection_id=0)),
            route_group(net, GroupConnection((8, 9), (10, 11), connection_id=1)),
        ]
        report = fabric.simulate(routes)
        assert report.correct
        assert report.delivered[0] == {p: frozenset({0}) for p in (4, 5, 6)}
        assert report.delivered[1] == {p: frozenset({8, 9}) for p in (10, 11)}

    def test_fabric_simulates_mixed_traffic(self):
        from repro.core.routing import route_conference
        from repro.switching.fabric import Fabric

        net = build("omega", 16)
        fabric = Fabric(net, dilation=8)
        routes = [
            route_conference(net, Conference.of((1, 2), conference_id=0)),
            route_group(net, GroupConnection.multicast(3, [12, 13], connection_id=1)),
        ]
        report = fabric.simulate(routes)
        assert report.correct

    def test_fabric_rejects_receiver_overlap(self):
        from repro.switching.fabric import Fabric

        net = build("omega", 16)
        fabric = Fabric(net, dilation=8)
        routes = [
            route_group(net, GroupConnection.multicast(0, [5], connection_id=0)),
            route_group(net, GroupConnection.multicast(1, [5], connection_id=1)),
        ]
        with pytest.raises(ValueError, match="share port"):
            fabric.simulate(routes)
