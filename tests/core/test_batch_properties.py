"""Property tests for the columnar routing core.

Three invariants carry the kernel's design and are cheap to state as
hypothesis properties:

* the stage-major occupancy matrix agrees entry-for-entry with the
  legacy per-link ``Counter`` walk, for any batch the kernel routes;
* batching is *pure*: ``route_batch`` of any permutation of a batch
  produces, conference for conference, exactly the routes sequential
  ``route_conference`` calls produce — order of submission never leaks
  into a result;
* occupancy words round-trip losslessly through the ``util.bits``
  pack/unpack pair, so the compact fingerprint loses no link.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.batch import occupancy_words, route_batch, stage_occupancy
from repro.core.conference import Conference
from repro.core.conflict import link_loads
from repro.core.routing import RoutingPolicy, route_conference_sequential
from repro.topology.builders import build
from repro.util.bits import pack_rows, unpack_rows

pytestmark = pytest.mark.tier1

N_PORTS = 16
NETS = {name: build(name, N_PORTS) for name in ("omega", "indirect-binary-cube")}

members_sets = st.sets(
    st.integers(min_value=0, max_value=N_PORTS - 1), min_size=2, max_size=6
)
batches = st.lists(members_sets, min_size=1, max_size=12).map(
    lambda groups: [Conference.of(sorted(g), cid) for cid, g in enumerate(groups)]
)
topologies = st.sampled_from(sorted(NETS))
taps = st.sampled_from(["earliest", "final"])


class TestOccupancyAgreesWithLinkCounting:
    @settings(max_examples=60, deadline=None)
    @given(batch=batches, topology=topologies)
    def test_matrix_matches_counter(self, batch, topology):
        net = NETS[topology]
        routes = [o.unwrap() for o in route_batch(net, batch)]
        loads = stage_occupancy(routes, net.n_stages, net.n_ports)
        counter = link_loads(routes)
        for t in range(net.n_stages + 1):
            for r in range(net.n_ports):
                assert loads[t, r] == counter.get((t, r), 0)
        # Level 0 is injections, never links.
        assert not loads[0].any()

    @settings(max_examples=40, deadline=None)
    @given(batch=batches, topology=topologies)
    def test_words_fingerprint_exactly_the_used_links(self, batch, topology):
        net = NETS[topology]
        routes = [o.unwrap() for o in route_batch(net, batch)]
        words = occupancy_words(stage_occupancy(routes, net.n_stages, net.n_ports))
        used = {link for route in routes for link in route.links}
        assert {
            (t, r) for t, word in enumerate(words) for r in unpack_rows(word)
        } == used


class TestBatchingIsPure:
    @settings(max_examples=50, deadline=None)
    @given(
        batch=batches,
        topology=topologies,
        tap=taps,
        shuffled=st.randoms(use_true_random=False),
    )
    def test_any_permutation_matches_sequential(self, batch, topology, tap, shuffled):
        net = NETS[topology]
        policy = RoutingPolicy(tap_policy=tap)
        shuffled.shuffle(batch)
        outcomes = route_batch(net, batch, policy)
        for conf, outcome in zip(batch, outcomes):
            assert outcome.conference is conf
            assert repr(outcome.unwrap()) == repr(
                route_conference_sequential(net, conf, policy)
            )


class TestWordsRoundTrip:
    @settings(max_examples=100)
    @given(rows=st.sets(st.integers(min_value=0, max_value=200)))
    def test_pack_unpack_lossless(self, rows):
        assert set(unpack_rows(pack_rows(rows))) == rows

    @settings(max_examples=100)
    @given(word=st.integers(min_value=0, max_value=(1 << 64) - 1))
    def test_unpack_pack_lossless(self, word):
        assert pack_rows(unpack_rows(word)) == word

    def test_negative_inputs_rejected(self):
        with pytest.raises(ValueError):
            pack_rows([-1])
        with pytest.raises(ValueError):
            unpack_rows(-5)
