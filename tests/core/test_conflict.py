"""Tests for conflict accounting."""

import pytest

from repro.core.conference import Conference
from repro.core.conflict import analyze_conflicts, link_loads
from repro.core.routing import route_conference
from repro.topology.builders import build


def routes_for(net, groups):
    return [
        route_conference(net, Conference.of(g, conference_id=i))
        for i, g in enumerate(groups)
    ]


class TestLinkLoads:
    def test_loads_count_conferences_per_link(self):
        net = build("indirect-binary-cube", 8)
        routes = routes_for(net, [[0, 3], [1, 2]])
        loads = link_loads(routes)
        # Both conferences spread over rows 0..3 at level 1, then collapse
        # back onto their own member rows at level 2.
        for row in range(4):
            assert loads[(1, row)] == 2
        for row in range(4):
            assert loads[(2, row)] == 1
        assert all(level >= 1 for (level, _row) in loads)

    def test_disjoint_rows_no_conflict(self):
        net = build("indirect-binary-cube", 8)
        routes = routes_for(net, [[0, 1], [2, 3]])
        assert max(link_loads(routes).values()) == 1


class TestAnalyze:
    def test_report_fields(self):
        net = build("indirect-binary-cube", 8)
        routes = routes_for(net, [[0, 3], [1, 2]])
        report = analyze_conflicts(routes)
        assert report.n_conferences == 2
        assert report.max_multiplicity == 2
        assert not report.conflict_free
        assert report.required_dilation == 2
        assert report.stage_profile == (2, 1, 0)
        assert report.worst_link[0] == 1
        assert dict(report.load_histogram)[2] == 4
        assert "2 conferences" in report.describe()

    def test_conflict_free_report(self):
        net = build("indirect-binary-cube", 8)
        routes = routes_for(net, [[0, 1], [2, 3]])
        report = analyze_conflicts(routes)
        assert report.conflict_free
        assert report.required_dilation == 1

    def test_empty_routes_need_stage_count(self):
        with pytest.raises(ValueError):
            analyze_conflicts([])
        report = analyze_conflicts([], n_stages=3)
        assert report.max_multiplicity == 0
        assert report.stage_profile == (0, 0, 0)
        assert report.worst_link is None

    def test_mixed_networks_rejected(self):
        r8 = routes_for(build("omega", 8), [[0, 1]])
        r16 = routes_for(build("omega", 16), [[0, 1]])
        with pytest.raises(ValueError, match="different stage counts"):
            analyze_conflicts(r8 + r16)

    def test_total_links_used(self):
        net = build("indirect-binary-cube", 8)
        routes = routes_for(net, [[0, 1], [2, 3]])
        report = analyze_conflicts(routes)
        assert report.total_links_used == len(
            routes[0].links | routes[1].links
        )
