"""Tests for the conference routing engine — the heart of the library."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import Conference
from repro.core.routing import (
    RoutingPolicy,
    TapPolicy,
    combine_at_level,
    delivered_members,
    route_conference,
)
from repro.topology.builders import PAPER_TOPOLOGIES, TOPOLOGY_BUILDERS, build

TOPOLOGIES = sorted(TOPOLOGY_BUILDERS)

conference_strategy = st.sets(st.integers(0, 15), min_size=1, max_size=16).map(
    lambda m: Conference.of(m)
)


class TestRouteInvariants:
    @settings(max_examples=120, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), conf=conference_strategy)
    def test_route_delivers_full_combination(self, name, conf):
        net = build(name, 16)
        route = route_conference(net, conf)
        delivered = delivered_members(net, conf, route.levels, route.taps)
        assert all(mask == conf.full_mask for mask in delivered.values())

    @settings(max_examples=80, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), conf=conference_strategy)
    def test_taps_are_earliest(self, name, conf):
        """No earlier level on a member's row carries the full mix."""
        net = build(name, 16)
        route = route_conference(net, conf)
        # Recompute unrestricted forward masks to check minimality.
        from repro.core.routing import _forward_masks

        forward = _forward_masks(net, conf)
        for port, t in route.taps.items():
            assert forward[t].get(port, 0) == conf.full_mask
            for earlier in range(t):
                assert forward[earlier].get(port, 0) != conf.full_mask

    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), conf=conference_strategy)
    def test_masks_grow_along_edges(self, name, conf):
        net = build(name, 16)
        route = route_conference(net, conf)
        tab = net.successor_table
        for t in range(net.n_stages):
            for row, mask in route.levels[t].items():
                for side in (0, 1):
                    nxt = int(tab[t, row, side])
                    nxt_mask = route.levels[t + 1].get(nxt)
                    if nxt_mask is not None:
                        assert nxt_mask & mask == mask

    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), conf=conference_strategy)
    def test_every_used_point_feeds_a_tap(self, name, conf):
        """No dead branches: each used point reaches some tap point."""
        net = build(name, 16)
        route = route_conference(net, conf)
        taps = {(t, port) for port, t in route.taps.items()}
        tab = net.successor_table
        for t in range(net.n_stages + 1):
            for row in route.levels[t]:
                # BFS forward within used region looking for a tap.
                frontier, found = {(t, row)}, False
                while frontier and not found:
                    if frontier & taps:
                        found = True
                        break
                    nxt = set()
                    for (lv, r) in frontier:
                        if lv == net.n_stages:
                            continue
                        for side in (0, 1):
                            r2 = int(tab[lv, r, side])
                            if r2 in route.levels[lv + 1]:
                                nxt.add((lv + 1, r2))
                    frontier = nxt
                assert found, f"point ({t},{row}) feeds no tap"

    def test_out_of_range_conference(self):
        net = build("omega", 8)
        with pytest.raises(ValueError, match="out of range"):
            route_conference(net, Conference.of([0, 9]))


class TestRouteShape:
    def test_singleton_uses_no_links(self):
        for name in TOPOLOGIES:
            route = route_conference(build(name, 16), Conference.of([7]))
            assert route.links == frozenset()
            assert route.taps == {7: 0}
            assert route.depth == 0

    def test_adjacent_pair_on_cube_uses_one_switch(self):
        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of([4, 5]))
        assert route.taps == {4: 1, 5: 1}
        assert route.links == frozenset({(1, 4), (1, 5)})
        assert route.n_links == 2

    def test_full_conference_depth(self):
        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of(range(16)))
        assert route.depth == 4
        assert combine_at_level(route, 4) == frozenset(range(16))

    def test_members_at_helpers(self):
        net = build("indirect-binary-cube", 16)
        conf = Conference.of([4, 5])
        route = route_conference(net, conf)
        assert route.members_at(0, 4) == frozenset({4})
        assert route.members_at(1, 4) == frozenset({4, 5})
        assert route.members_at(1, 9) == frozenset()
        assert route.mask_at(1, 9) == 0

    def test_stages_traversed(self):
        net = build("indirect-binary-cube", 16)
        route = route_conference(net, Conference.of([4, 5]))
        assert route.stages_traversed(4) == 1
        with pytest.raises(ValueError):
            route.stages_traversed(9)

    def test_cube_depth_is_block_exponent(self):
        net = build("indirect-binary-cube", 32)
        for members in [(0, 1), (0, 3), (7, 8), (0, 31), (16, 17, 18)]:
            conf = Conference.of(members)
            route = route_conference(net, conf)
            assert route.depth == conf.enclosing_block_exponent(32)


class TestPolicies:
    def test_final_policy_taps_last_stage(self):
        net = build("omega", 16)
        conf = Conference.of([0, 8])
        route = route_conference(net, conf, RoutingPolicy(tap_policy=TapPolicy.FINAL))
        assert set(route.taps.values()) == {4}

    def test_final_policy_uses_no_fewer_stages(self):
        net = build("indirect-binary-cube", 16)
        conf = Conference.of([0, 1])
        early = route_conference(net, conf)
        late = route_conference(net, conf, RoutingPolicy(tap_policy=TapPolicy.FINAL))
        assert early.depth == 1
        assert late.depth == 4
        assert early.n_links < late.n_links

    def test_policy_accepts_strings(self):
        policy = RoutingPolicy(tap_policy="final")
        assert policy.tap_policy is TapPolicy.FINAL

    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(sorted(PAPER_TOPOLOGIES)), conf=conference_strategy)
    def test_pruned_route_still_delivers(self, name, conf):
        net = build(name, 16)
        route = route_conference(net, conf, RoutingPolicy(prune=True))
        delivered = delivered_members(net, conf, route.levels, route.taps)
        assert all(mask == conf.full_mask for mask in delivered.values())

    @settings(max_examples=60, deadline=None)
    @given(name=st.sampled_from(sorted(PAPER_TOPOLOGIES)), conf=conference_strategy)
    def test_pruning_never_adds_links(self, name, conf):
        net = build(name, 16)
        natural = route_conference(net, conf)
        pruned = route_conference(net, conf, RoutingPolicy(prune=True))
        assert pruned.links <= natural.links
