"""Cross-module integration tests: the paper's story end to end.

Each test exercises several subsystems together — workload generation,
routing, conflict analysis, the hardware fabric, admission control — and
asserts the relationships the reproduction's experiments report.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import (
    Conference,
    ConferenceNetwork,
    PAPER_TOPOLOGIES,
)
from repro.core.admission import place_aligned
from repro.analysis.theory import max_multiplicity_bound
from repro.analysis.worstcase import cube_adversarial_set
from repro.switching.fabric import CapacityExceeded
from repro.workloads.generators import uniform_partition

TOPOLOGIES = sorted(PAPER_TOPOLOGIES)


class TestRandomTrafficRealization:
    @settings(max_examples=20, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), seed=st.integers(0, 10_000))
    def test_any_random_set_realizes_with_enough_dilation(self, name, seed):
        """Route a random disjoint set, read off its required dilation,
        provision exactly that, and verify hardware delivery."""
        workload = uniform_partition(32, load=0.8, seed=seed)
        probe = ConferenceNetwork.build(name, 32, dilation=32)
        needed = probe.conflicts(probe.route_set(workload)).required_dilation
        network = ConferenceNetwork.build(name, 32, dilation=needed)
        result = network.realize(workload)
        assert result.ok
        assert result.conflicts.required_dilation == needed
        if needed > 1:
            tight = ConferenceNetwork.build(name, 32, dilation=needed - 1)
            with pytest.raises(CapacityExceeded):
                tight.realize(workload)

    @settings(max_examples=15, deadline=None)
    @given(name=st.sampled_from(TOPOLOGIES), seed=st.integers(0, 10_000))
    def test_random_multiplicity_never_exceeds_worst_case(self, name, seed):
        n = 5  # N = 32
        workload = uniform_partition(32, load=1.0, seed=seed)
        network = ConferenceNetwork.build(name, 32, dilation=32)
        report = network.conflicts(network.route_set(workload))
        bound = max_multiplicity_bound(n, topology="omega" if name == "omega" else name)
        assert report.max_multiplicity <= bound


class TestPaperNarrative:
    def test_worst_case_needs_sqrt_n_dilation_on_the_cube(self):
        """The adversarial set really cannot be carried below 2**(n/2)."""
        n_ports = 64
        adversarial = cube_adversarial_set(n_ports)
        bound = max_multiplicity_bound(6)
        exact = ConferenceNetwork.build("indirect-binary-cube", n_ports, dilation=bound)
        assert exact.realize(adversarial).ok
        short = ConferenceNetwork.build("indirect-binary-cube", n_ports, dilation=bound - 1)
        with pytest.raises(CapacityExceeded):
            short.realize(adversarial)

    def test_aligned_placement_fixes_the_same_traffic_shape(self):
        """Re-homing the adversarial conferences into aligned blocks
        removes every conflict — the Yang-2001 contrast."""
        n_ports = 64
        adversarial = cube_adversarial_set(n_ports)
        aligned = place_aligned(n_ports, [c.size for c in adversarial])
        network = ConferenceNetwork.build("indirect-binary-cube", n_ports, dilation=1)
        assert network.realize(aligned).ok

    def test_all_three_topologies_carry_aligned_traffic_somehow(self):
        """Aligned placement is conflict-free on the cube (for any
        block-confined conferences) and on omega under buddy-prefix
        placement, but baseline loses the guarantee outright — see
        tests/analysis/test_aligned_guarantee.py for the exhaustive
        taxonomy."""
        aligned = place_aligned(32, [4, 4, 2, 2, 8, 3])
        multiplicities = {}
        for name in TOPOLOGIES:
            network = ConferenceNetwork.build(name, 32, dilation=32)
            report = network.conflicts(network.route_set(aligned))
            multiplicities[name] = report.max_multiplicity
        assert multiplicities["indirect-binary-cube"] == 1
        assert multiplicities["omega"] >= 1

    def test_every_member_hears_everyone_in_a_big_mixed_set(self):
        groups = [[0, 9, 22, 31], [1, 2, 3], [4, 12], [5], list(range(16, 22))]
        for name in TOPOLOGIES:
            network = ConferenceNetwork.build(name, 32, dilation=8)
            result = network.realize(groups)
            assert result.ok
            for route in result.routes:
                expected = route.conference.member_set
                delivered = result.delivery.delivered[route.conference.conference_id]
                assert all(v == expected for v in delivered.values())


class TestRelayValue:
    def test_relay_shortens_paths_and_sheds_load(self):
        """The mux relay (Yang's enhancement) strictly reduces stages
        traversed and links used for block-local conferences."""
        groups = [[0, 1], [2, 3], [8, 9, 10, 11]]
        with_relay = ConferenceNetwork.build("indirect-binary-cube", 16, dilation=4)
        without = ConferenceNetwork.build(
            "indirect-binary-cube", 16, dilation=4, relay_enabled=False
        )
        r_on = with_relay.realize(groups)
        r_off = without.realize(groups)
        assert r_on.ok and r_off.ok
        links_on = sum(r.n_links for r in r_on.routes)
        links_off = sum(r.n_links for r in r_off.routes)
        assert links_on < links_off
        assert max(r.depth for r in r_on.routes) < max(r.depth for r in r_off.routes)
