"""Fuzzing the routing engine over arbitrary random topologies.

The curated topologies are all banyan and full-access; the routing
engine itself promises correctness for *any* wiring built from
bijective inter-stage permutations.  These tests build networks from
random permutations and assert the engine's contract: either a clean
``UnroutableError`` (the random wiring lacks the needed access) or a
route that the hardware simulator confirms delivers exactly the full
combination — never silent misdelivery.
"""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import Conference
from repro.core.routing import UnroutableError, route_conference
from repro.switching.fabric import Fabric
from repro.topology.network import MultistageNetwork, Stage
from repro.topology.permutations import from_mapping


def random_network(n_ports: int, n_stages: int, seed: int) -> MultistageNetwork:
    """A network whose pre/post wirings are uniform random permutations."""
    rng = np.random.default_rng(seed)
    stages = []
    for s in range(n_stages):
        pre = from_mapping([int(x) for x in rng.permutation(n_ports)], name=f"pre{s}")
        post = from_mapping([int(x) for x in rng.permutation(n_ports)], name=f"post{s}")
        stages.append(Stage(pre=pre, post=post, label=f"rand[{s}]"))
    return MultistageNetwork(n_ports, stages, name=f"random-{seed}")


class TestRandomTopologyContract:
    @settings(max_examples=80, deadline=None)
    @given(
        seed=st.integers(0, 10_000),
        n_stages=st.integers(1, 6),
        members=st.sets(st.integers(0, 15), min_size=1, max_size=6),
    )
    def test_route_or_clean_failure(self, seed, n_stages, members):
        net = random_network(16, n_stages, seed)
        conf = Conference.of(members)
        try:
            route = route_conference(net, conf)
        except UnroutableError:
            return  # legal outcome on arbitrary wiring
        report = Fabric(net, dilation=1).simulate([route])
        assert report.correct

    @settings(max_examples=40, deadline=None)
    @given(seed=st.integers(0, 10_000), members=st.sets(st.integers(0, 15), min_size=2, max_size=5))
    def test_enough_random_stages_always_route(self, seed, members):
        """With 2*log2(N) random stages, mixing is essentially certain;
        if routing succeeds the taps must satisfy the earliest property."""
        net = random_network(16, 8, seed)
        conf = Conference.of(members)
        try:
            route = route_conference(net, conf)
        except UnroutableError:
            return
        from repro.core.routing import _forward_masks

        forward = _forward_masks(net, conf)
        for port, t in route.taps.items():
            assert forward[t].get(port, 0) == conf.full_mask
            assert all(forward[e].get(port, 0) != conf.full_mask for e in range(t))

    def test_single_stage_random_network_often_unroutable(self):
        """Sanity: one random stage cannot combine spread-out members."""
        failures = 0
        for seed in range(20):
            net = random_network(16, 1, seed)
            try:
                route_conference(net, Conference.of([0, 5, 9, 14]))
            except UnroutableError:
                failures += 1
        assert failures == 20
