"""Serve-layer attachment: DeliveryModel, capacity_model knob, overlays.

The load-bearing contract here is *transparency*: ``capacity_model=
"abstract"`` (the default) must behave byte-identically to a service
built before this subsystem existed — same admission decisions, same
report dict, no ``"delivery"`` key, no new metric families.  The
buffered overlay adds a delivery block without perturbing anything.
"""

import pytest

from repro.analysis.worstcase import cube_adversarial_set
from repro.core.network import ConferenceNetwork
from repro.core.routing import route_conference
from repro.obs.metrics import MetricsRegistry
from repro.perfmodel import DeliveryModel, PerfModelConfig
from repro.perfmodel.capacity import validate_capacity_model
from repro.serve.bench import run_serve_bench
from repro.serve.service import FabricService
from repro.topology.builders import build

pytestmark = pytest.mark.tier1

N_PORTS = 16


def adversarial_routes(n_ports=32):
    net = build("indirect-binary-cube", n_ports)
    return [route_conference(net, c) for c in cube_adversarial_set(n_ports)]


def service(**kwargs) -> FabricService:
    kwargs.setdefault("rng", 0)
    network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
    return FabricService(network, **kwargs)


class TestValidation:
    def test_knob_spellings(self):
        assert validate_capacity_model("abstract") == "abstract"
        assert validate_capacity_model("buffered") == "buffered"
        with pytest.raises(ValueError, match="capacity_model"):
            validate_capacity_model("queueing")

    def test_service_rejects_unknown_model(self):
        with pytest.raises(ValueError, match="capacity_model"):
            service(capacity_model="queueing")


class TestDeliveryModel:
    def test_idle_ticks_return_none_and_are_counted(self):
        model = DeliveryModel()
        assert model.on_tick([]) is None
        assert model.on_tick([None, None]) is None
        assert model.ticks == 2 and model.idle_ticks == 2
        assert model.delivery_ratio == 1.0
        assert model.summary()["offered_packets"] == 0

    def test_tick_folds_into_aggregates(self):
        routes = adversarial_routes()
        model = DeliveryModel(PerfModelConfig(cycles_per_tick=128))
        tick = model.on_tick(routes)
        assert tick is not None
        assert tick["conferences"] == len(routes)
        assert tick["offered_packets"] == len(routes)  # packets_per_tick=1
        assert model.offered_packets == tick["offered_packets"]
        assert model.delivered_packets == tick["delivered_packets"]
        assert (
            model.undelivered_packets
            == tick["offered_packets"] - tick["delivered_packets"]
        )

    def test_cross_tick_totals_accumulate(self):
        routes = adversarial_routes()
        model = DeliveryModel()
        for _ in range(3):
            model.on_tick(routes)
        assert model.ticks == 3
        assert model.offered_packets == 3 * len(routes)
        summary = model.summary()
        assert summary["capacity_model"] == "buffered"
        assert summary["config"] == model.config.as_dict()
        assert summary["delivery_ratio"] == model.delivery_ratio

    def test_merge_summary_adds_counts_and_maxes_peaks(self):
        routes = adversarial_routes()
        a, b = DeliveryModel(), DeliveryModel()
        a.on_tick(routes)
        b.on_tick(routes)
        b.on_tick(routes)
        merged = DeliveryModel()
        for shard in (a, b):
            merged.merge_summary(shard.summary())
            merged.merge_histogram(shard)
        assert merged.ticks == 3
        assert merged.offered_packets == a.offered_packets + b.offered_packets
        assert merged.delivered_packets == a.delivered_packets + b.delivered_packets
        assert merged.peak_lane_occupancy == max(
            a.peak_lane_occupancy, b.peak_lane_occupancy
        )
        # Histogram merge carries the latency series over.
        assert merged.latency_percentiles()["p50"] is not None

    def test_metrics_flow_through(self):
        reg = MetricsRegistry()
        model = DeliveryModel(metrics=reg)
        model.on_tick(adversarial_routes())
        flits = reg.counter("repro_perf_flits_total")
        assert flits.value(event="offered") == model.offered_flits


class TestServiceAttachment:
    def test_abstract_mode_has_no_delivery_model(self):
        svc = service()
        assert svc.capacity_model == "abstract"
        assert svc.delivery is None

    def test_buffered_mode_attaches_and_observes_ticks(self):
        svc = service(capacity_model="buffered",
                      perf=PerfModelConfig(cycles_per_tick=32))
        assert svc.capacity_model == "buffered"
        got = []
        svc.submit_open([0, 1, 2], on_complete=got.append)
        svc.tick()
        assert got and got[0].ok
        assert svc.delivery.ticks == 1
        assert svc.delivery.offered_packets >= 1

    def test_admission_decisions_identical_across_modes(self):
        """The overlay never changes what gets admitted."""
        outcomes = {}
        for mode in ("abstract", "buffered"):
            svc = service(capacity_model=mode)
            got = []
            for base in range(0, 12, 3):
                svc.submit_open([base, base + 1, base + 2],
                                on_complete=got.append)
            for _ in range(4):
                svc.tick()
            outcomes[mode] = [(r.ok, r.status) for r in got]
        assert outcomes["abstract"] == outcomes["buffered"]


class TestBenchTransparency:
    def test_abstract_report_has_no_delivery_block(self):
        report = run_serve_bench(16, conferences=10, seed=0)
        assert report.delivery is None
        assert "delivery" not in report.as_dict()

    def test_abstract_dict_identical_with_and_without_knob(self):
        """Passing the default knob explicitly changes nothing."""
        base = run_serve_bench(16, conferences=15, seed=2).as_dict()
        knob = run_serve_bench(
            16, conferences=15, seed=2, capacity_model="abstract"
        ).as_dict()
        assert base == knob

    def test_buffered_adds_only_the_delivery_block(self):
        base = run_serve_bench(16, conferences=15, seed=2).as_dict()
        buff = run_serve_bench(
            16, conferences=15, seed=2, capacity_model="buffered",
            perf=PerfModelConfig(cycles_per_tick=32),
        ).as_dict()
        delivery = buff.pop("delivery")
        assert buff == base
        assert delivery["capacity_model"] == "buffered"
        assert delivery["offered_packets"] > 0
        assert 0.0 <= delivery["delivery_ratio"] <= 1.0

    def test_buffered_runs_are_deterministic(self):
        kwargs = dict(conferences=15, seed=2, capacity_model="buffered",
                      perf=PerfModelConfig(cycles_per_tick=32))
        a = run_serve_bench(16, **kwargs).as_dict()
        b = run_serve_bench(16, **kwargs).as_dict()
        assert a == b


class TestClusterTransparency:
    def test_cluster_delivery_merges_shards(self):
        from repro.cluster.bench import run_cluster_bench

        base = run_cluster_bench(
            ports=16, shards=2, conferences=12, seed=4
        ).as_dict()
        buff = run_cluster_bench(
            ports=16, shards=2, conferences=12, seed=4,
            capacity_model="buffered", perf=PerfModelConfig(cycles_per_tick=32),
        ).as_dict()
        delivery = buff.pop("delivery")
        assert buff == base
        assert delivery["shards"] == 2
        assert delivery["offered_packets"] > 0
