"""Hypothesis invariants of the wormhole cycle model.

Two properties the issue names explicitly: **flit conservation** (no
flit created or lost across any interleaving of injections and cycles)
and **queue boundedness** (no lane FIFO ever exceeds its configured
depth).  Plus the liveness corollary of level-ordered waiting: a sim
with pending work always drains within a bounded horizon.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.worstcase import cube_adversarial_set
from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.perfmodel import CycleSim, PerfModelConfig
from repro.topology.builders import build

pytestmark = pytest.mark.tier1

N_PORTS = 16


def _routes(groups):
    net = build("indirect-binary-cube", N_PORTS)
    confs = [Conference.of(sorted(g), i) for i, g in enumerate(groups)]
    return [route_conference(net, c) for c in confs]


# Small disjoint-free conference sets over 16 ports: overlap is allowed
# (and likely), which is exactly what exercises lane contention.
groups_strategy = st.lists(
    st.sets(st.integers(min_value=0, max_value=N_PORTS - 1), min_size=2, max_size=5),
    min_size=1,
    max_size=4,
)

config_strategy = st.builds(
    PerfModelConfig,
    lanes=st.integers(min_value=1, max_value=3),
    buffer_depth=st.integers(min_value=1, max_value=4),
    flits_per_packet=st.integers(min_value=1, max_value=5),
    tdm=st.booleans(),
)

# An interleaving of actions: (conference index, packets) injections and
# plain cycle steps (None).
actions_strategy = st.lists(
    st.one_of(
        st.none(),
        st.tuples(
            st.integers(min_value=0, max_value=3),
            st.integers(min_value=1, max_value=3),
        ),
    ),
    max_size=40,
)


@settings(max_examples=40, deadline=None)
@given(groups=groups_strategy, config=config_strategy, actions=actions_strategy)
def test_flit_conservation_under_arbitrary_interleavings(groups, config, actions):
    """offered == waiting + in-fabric + delivered after every action."""
    routes = _routes(groups)
    sim = CycleSim(routes, config)
    cids = sim.conference_ids
    for action in actions:
        if action is None:
            sim.step()
        else:
            idx, packets = action
            sim.inject(cids[idx % len(cids)], packets)
        sim.check_conservation()
    offered = sum(p * config.flits_per_packet for a in actions if a for _, p in [a])
    assert sim.offered_flits == offered
    report = sim.report()
    assert report.ok, report.reason


@settings(max_examples=40, deadline=None)
@given(groups=groups_strategy, config=config_strategy, actions=actions_strategy)
def test_queue_occupancy_never_exceeds_depth(groups, config, actions):
    """Every lane FIFO stays within ``buffer_depth`` after every cycle."""
    routes = _routes(groups)
    sim = CycleSim(routes, config)
    cids = sim.conference_ids
    for action in actions:
        if action is None:
            sim.step()
        else:
            idx, packets = action
            sim.inject(cids[idx % len(cids)], packets)
        for link in sim.links.values():
            for lane in link.lanes:
                assert 0 <= lane.occupancy <= config.buffer_depth
                assert lane.peak_occupancy <= config.buffer_depth
    # Peaks survive into the report.
    assert sim.report().peak_lane_occupancy <= config.buffer_depth


@settings(max_examples=25, deadline=None)
@given(groups=groups_strategy, config=config_strategy, packets=st.integers(1, 6))
def test_drain_always_makes_progress(groups, config, packets):
    """Level-ordered waiting cannot deadlock: every load drains."""
    routes = _routes(groups)
    sim = CycleSim(routes, config)
    for cid in sim.conference_ids:
        sim.inject(cid, packets)
    # Generous but finite horizon: a packet needs at most F + depth
    # cycles uncontended (depth <= log2(16) + 1 here), full serialization
    # multiplies that by every packet in the system, and TDM divides the
    # cycle rate by n_slots.
    n_confs = len(sim.conference_ids)
    per_packet = config.flits_per_packet + 8
    horizon = n_confs * packets * per_packet * sim.n_slots * 4
    spent = sim.drain(max_cycles=horizon)
    assert spent <= horizon
    assert sim.delivered_packets == sim.offered_packets
    assert sim.in_fabric_flits == 0
    sim.check_conservation()


@settings(max_examples=25, deadline=None)
@given(
    lanes=st.integers(min_value=1, max_value=4),
    packets=st.integers(min_value=1, max_value=4),
)
def test_delivery_monotone_in_cycles(lanes, packets):
    """More cycles never un-deliver: delivered counts are monotone."""
    net = build("indirect-binary-cube", 32)
    routes = [route_conference(net, c) for c in cube_adversarial_set(32)]
    sim = CycleSim(routes, PerfModelConfig(lanes=lanes))
    for cid in sim.conference_ids:
        sim.inject(cid, packets)
    prev = 0
    for _ in range(120):
        sim.step()
        assert sim.delivered_packets >= prev
        assert sim.delivered_flits <= sim.injected_flits <= sim.offered_flits
        prev = sim.delivered_packets
