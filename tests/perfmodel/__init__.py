"""Tests for the cycle-level buffered-switch performance model."""
