"""Unit tests for the wormhole cycle model: lanes, queues, worms, TDM."""

import pytest

from repro.analysis.scheduling import schedule_slots
from repro.analysis.worstcase import cube_adversarial_set
from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.obs.metrics import MetricsRegistry
from repro.perfmodel import (
    CycleSim,
    LaneQueue,
    LinkModel,
    PerfModelConfig,
    PerfReport,
    simulate_delivery,
)
from repro.topology.builders import build

pytestmark = pytest.mark.tier1


def routes_for(net, cs):
    return [route_conference(net, c) for c in cs]


def adversarial_routes(n_ports=32):
    net = build("indirect-binary-cube", n_ports)
    return routes_for(net, cube_adversarial_set(n_ports))


class TestConfig:
    def test_defaults(self):
        cfg = PerfModelConfig()
        assert cfg.lanes == 1 and cfg.buffer_depth == 4
        assert cfg.flits_per_packet == 4 and not cfg.tdm

    @pytest.mark.parametrize("field", ["lanes", "buffer_depth", "flits_per_packet", "cycles_per_tick"])
    def test_positive_ints_enforced(self, field):
        with pytest.raises(ValueError, match=field):
            PerfModelConfig(**{field: 0})

    def test_packets_per_tick_may_be_zero_but_not_negative(self):
        assert PerfModelConfig(packets_per_tick=0).packets_per_tick == 0
        with pytest.raises(ValueError, match="packets_per_tick"):
            PerfModelConfig(packets_per_tick=-1)

    def test_as_dict_round_trips_every_knob(self):
        cfg = PerfModelConfig(lanes=2, buffer_depth=8, flits_per_packet=2, tdm=True)
        d = cfg.as_dict()
        assert PerfModelConfig(**d) == cfg


class TestLaneQueue:
    def test_exclusive_ownership(self):
        lane = LaneQueue(0, depth=2)
        assert lane.can_accept(pid=1, cycle=0)
        lane.push(1, cycle=0)
        assert lane.owner == 1
        assert not lane.can_accept(pid=2, cycle=1)
        assert lane.stall_busy == 1

    def test_one_push_per_cycle(self):
        lane = LaneQueue(0, depth=4)
        lane.push(1, cycle=0)
        assert not lane.can_accept(pid=1, cycle=0)
        assert lane.can_accept(pid=1, cycle=1)

    def test_depth_bound(self):
        lane = LaneQueue(0, depth=2)
        lane.push(1, cycle=0)
        lane.push(1, cycle=1)
        assert not lane.can_accept(pid=1, cycle=2)
        assert lane.stall_full >= 1

    def test_release_frees_owner_only_when_empty(self):
        lane = LaneQueue(0, depth=2)
        lane.push(1, cycle=0)
        lane.push(1, cycle=1)
        lane.pop(release=True)
        assert lane.owner == 1  # one flit still buffered
        lane.pop(release=True)
        assert lane.owner is None
        assert lane.can_accept(pid=2, cycle=2)

    def test_peak_occupancy_tracks_high_water(self):
        lane = LaneQueue(0, depth=3)
        for c in range(3):
            lane.push(1, cycle=c)
        lane.pop(release=False)
        assert lane.peak_occupancy == 3


class TestLinkModel:
    def test_lanes_and_occupancy(self):
        link = LinkModel((1, 0), n_lanes=2, depth=4)
        link.lanes[0].push(1, cycle=0)
        link.lanes[1].push(2, cycle=0)
        assert link.occupancy == 2
        assert link.peak_occupancy == 1


class TestCycleSim:
    def test_single_conference_delivers_all_packets(self):
        net = build("indirect-binary-cube", 16)
        routes = routes_for(net, [Conference.of((0, 9), 0)])
        sim = CycleSim(routes, PerfModelConfig())
        sim.inject(0, 5)
        spent = sim.drain()
        assert sim.delivered_packets == 5
        assert sim.delivered_flits == sim.offered_flits == 20
        assert spent > 0
        sim.check_conservation()

    def test_duplicate_conference_ids_rejected(self):
        net = build("indirect-binary-cube", 16)
        routes = routes_for(net, [Conference.of((0, 9), 3), Conference.of((1, 2), 3)])
        with pytest.raises(ValueError, match="duplicate"):
            CycleSim(routes)

    def test_inject_unknown_conference_rejected(self):
        sim = CycleSim(adversarial_routes())
        with pytest.raises(KeyError, match="no route"):
            sim.inject(999)

    def test_latency_is_depth_plus_flits_when_uncontended(self):
        # A lone worm pipelines one level per cycle: last flit is offered
        # at cycle 0, injected at cycle F-1, then needs depth cycles to
        # traverse and 1 to drain — total depth + F.
        net = build("indirect-binary-cube", 16)
        (route,) = routes_for(net, [Conference.of((0, 9), 0)])
        cfg = PerfModelConfig(flits_per_packet=3)
        sim = CycleSim([route], cfg)
        sim.inject(0, 1)
        sim.drain()
        depth = route.depth
        lat = sim.latency_percentiles()
        # One log-bucket of error around the exact value.
        assert lat["p50"] == pytest.approx(depth + 3, rel=0.25)

    def test_deterministic_step_by_step(self):
        routes = adversarial_routes()
        a = CycleSim(routes, PerfModelConfig(lanes=2))
        b = CycleSim(routes, PerfModelConfig(lanes=2))
        for sim in (a, b):
            for cid in sim.conference_ids:
                sim.inject(cid, 3)
            sim.run(200)
        assert a.report().as_dict() == b.report().as_dict()

    def test_report_satisfies_result_protocol(self):
        from repro.api import Result

        sim = CycleSim(adversarial_routes())
        report = sim.report()
        assert isinstance(report, Result)
        assert report.ok and report.reason is None
        assert report.as_dict()["kind"] == "perf_report"

    def test_metrics_published_once_per_observe(self):
        reg = MetricsRegistry()
        routes = adversarial_routes()
        sim = CycleSim(routes, PerfModelConfig(), metrics=reg)
        for cid in sim.conference_ids:
            sim.inject(cid, 2)
        sim.run(100)
        sim.observe_metrics()
        flits = reg.counter("repro_perf_flits_total")
        assert flits.value(event="offered") == sim.offered_flits
        # A second observe adds only the delta (here: nothing).
        sim.observe_metrics()
        assert flits.value(event="offered") == sim.offered_flits

    def test_no_metrics_registry_is_fine(self):
        sim = CycleSim(adversarial_routes())
        sim.observe_metrics()  # no-op without a registry


class TestSaturation:
    """Delivered throughput saturates at L/(m*F) — not below it."""

    @pytest.mark.parametrize("lanes", [1, 2, 4])
    def test_knee_at_the_multiplicity_bound(self, lanes):
        routes = adversarial_routes(32)  # multiplicity 4, divisible by L
        m, F = 4, 4
        r_star = min(1.0 / F, lanes / (m * F))
        below = simulate_delivery(
            routes, config=PerfModelConfig(lanes=lanes),
            cycles=4000, offered_load=0.8 * r_star,
        )
        above = simulate_delivery(
            routes, config=PerfModelConfig(lanes=lanes),
            cycles=4000, offered_load=1.5 * r_star,
        )
        per_conf_below = below.delivered_throughput / len(routes)
        per_conf_above = above.delivered_throughput / len(routes)
        # Below the knee: delivery tracks the offer (within ramp-up loss).
        assert per_conf_below == pytest.approx(0.8 * r_star, rel=0.05)
        # Above the knee: delivery plateaus at the bound — and crucially
        # never below it (saturation at, not before, the bound).
        assert per_conf_above == pytest.approx(r_star, rel=0.05)
        assert per_conf_above <= r_star * 1.001

    def test_latency_blows_up_past_saturation(self):
        routes = adversarial_routes(32)
        r_star = 1 / 16
        calm = simulate_delivery(routes, cycles=3000, offered_load=0.5 * r_star)
        hot = simulate_delivery(routes, cycles=3000, offered_load=1.5 * r_star)
        assert hot.latency["p99"] > 10 * calm.latency["p99"]


class TestTDM:
    def test_tdm_uses_colouring_frame(self):
        routes = adversarial_routes(32)
        sched = schedule_slots(routes)
        sim = CycleSim(routes, PerfModelConfig(tdm=True))
        assert sim.n_slots == sched.n_slots

    def test_explicit_schedule_accepted(self):
        routes = adversarial_routes(32)
        slots = {r.conference.conference_id: i for i, r in enumerate(routes)}
        sim = CycleSim(routes, PerfModelConfig(tdm=True), schedule=slots)
        assert sim.n_slots == len(routes)

    def test_missing_schedule_entry_rejected(self):
        routes = adversarial_routes(32)
        slots = {routes[0].conference.conference_id: 0}
        with pytest.raises(ValueError, match="missing conference"):
            CycleSim(routes, PerfModelConfig(tdm=True), schedule=slots)

    def test_tdm_throughput_divided_by_frame_length(self):
        # Sharers get a private virtual lane but only 1/n_slots of the
        # cycles: per-conference saturation rate is 1/(F * n_slots).
        routes = adversarial_routes(32)
        sim = CycleSim(routes, PerfModelConfig(tdm=True))
        r_star = 1.0 / (4 * sim.n_slots)
        report = simulate_delivery(
            routes, config=PerfModelConfig(tdm=True),
            cycles=4000, offered_load=1.5 * r_star,
        )
        per_conf = report.delivered_throughput / len(routes)
        assert per_conf == pytest.approx(r_star, rel=0.05)

    def test_tdm_gate_stalls_are_counted(self):
        routes = adversarial_routes(32)
        report = simulate_delivery(
            routes, config=PerfModelConfig(tdm=True),
            cycles=500, offered_load=0.05,
        )
        assert report.stalls["tdm_gate"] > 0

    def test_space_mode_never_tdm_stalls(self):
        routes = adversarial_routes(32)
        report = simulate_delivery(routes, cycles=500, offered_load=0.05)
        assert report.stalls["tdm_gate"] == 0
        assert report.n_slots == 1


class TestSimulateDelivery:
    def test_drain_closes_the_books(self):
        routes = adversarial_routes(32)
        report = simulate_delivery(
            routes, cycles=200, offered_load=0.1, drain=True
        )
        assert report.delivered_flits == report.offered_flits
        assert report.in_fabric_flits == 0
        assert report.delivery_ratio == 1.0

    def test_zero_load_is_quiet(self):
        routes = adversarial_routes(32)
        report = simulate_delivery(routes, cycles=100, offered_load=0.0)
        assert report.offered_packets == 0
        assert report.ok

    def test_negative_load_rejected(self):
        with pytest.raises(ValueError, match="offered_load"):
            simulate_delivery(adversarial_routes(), offered_load=-0.1)

    def test_per_conference_breakdown(self):
        routes = adversarial_routes(32)
        report = simulate_delivery(routes, cycles=1000, offered_load=0.02, drain=True)
        assert set(report.per_conference) == {
            r.conference.conference_id for r in routes
        }
        for entry in report.per_conference.values():
            assert entry["delivered"] == entry["offered"] > 0
            assert entry["latency"]["p50"] is not None


class TestPerfReportVerdict:
    def test_ok_requires_monotone_counts(self):
        report = PerfReport(
            cycles=1, config={}, n_conferences=0, n_links=0, n_slots=1,
            offered_packets=0, delivered_packets=0,
            offered_flits=0, injected_flits=5, delivered_flits=9,
            in_fabric_flits=0,
        )
        assert not report.ok
        assert "non-monotone" in report.reason

    def test_conservation_flag_controls_verdict(self):
        report = PerfReport(
            cycles=1, config={}, n_conferences=0, n_links=0, n_slots=1,
            offered_packets=0, delivered_packets=0,
            offered_flits=0, injected_flits=0, delivered_flits=0,
            in_fabric_flits=0, conserved=False,
        )
        assert not report.ok
        assert report.reason == "flit conservation violated"
