"""Tests for ASCII network/route rendering."""

import pytest

from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.report.ascii import render_network, render_routes, render_stage_profile
from repro.topology.builders import build


class TestRenderNetwork:
    def test_contains_every_row(self):
        text = render_network(build("omega", 8))
        for row in range(8):
            assert f"\n{row:3d} |" in text

    def test_size_guard(self):
        with pytest.raises(ValueError):
            render_network(build("omega", 128))


class TestRenderRoutes:
    def test_conflict_markers(self):
        net = build("indirect-binary-cube", 8)
        routes = [
            route_conference(net, Conference.of([0, 3], conference_id=0)),
            route_conference(net, Conference.of([1, 2], conference_id=1)),
        ]
        text = render_routes(net, routes)
        assert "*0+1" in text  # contested links show both owners
        assert ">" in text  # taps marked

    def test_idle_rows_are_dots(self):
        net = build("indirect-binary-cube", 8)
        routes = [route_conference(net, Conference.of([0, 1], conference_id=0))]
        text = render_routes(net, routes)
        last_row = text.splitlines()[-1]
        assert set(last_row.split("|")[1].split()) == {"."}

    def test_size_guard(self):
        with pytest.raises(ValueError):
            render_routes(build("omega", 128), [])


class TestStageProfile:
    def test_renders_all_series(self):
        text = render_stage_profile({"omega": (2, 3, 1), "cube": (2, 2, 1)})
        assert "omega" in text and "cube" in text
        assert "t=2:3" in text
