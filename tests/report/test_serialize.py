"""Tests for JSON serialization."""

import json

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.report.serialize import (
    SCHEMA_VERSION,
    conference_set_from_dict,
    conference_set_to_dict,
    conflict_report_to_dict,
    load_conference_set,
    result_to_dict,
    route_to_dict,
    save_json,
)
from repro.topology.builders import build
from repro.workloads.generators import uniform_partition


class TestConferenceSetRoundTrip:
    @settings(max_examples=30, deadline=None)
    @given(seed=st.integers(0, 5000))
    def test_round_trip_preserves_everything(self, seed):
        cs = uniform_partition(32, load=0.7, seed=seed)
        back = conference_set_from_dict(conference_set_to_dict(cs))
        assert back.n_ports == cs.n_ports
        assert [c.members for c in back] == [c.members for c in cs]
        assert [c.conference_id for c in back] == [c.conference_id for c in cs]

    def test_kind_and_schema_checked(self):
        with pytest.raises(ValueError, match="kind"):
            conference_set_from_dict({"kind": "route"})
        with pytest.raises(ValueError, match="schema"):
            conference_set_from_dict({"kind": "conference_set", "schema": 99})

    def test_disjointness_revalidated_on_load(self):
        data = {
            "kind": "conference_set",
            "schema": 1,
            "n_ports": 8,
            "conferences": [
                {"id": 0, "members": [0, 1]},
                {"id": 1, "members": [1, 2]},
            ],
        }
        with pytest.raises(ValueError, match="overlaps"):
            conference_set_from_dict(data)

    def test_file_round_trip(self, tmp_path):
        cs = uniform_partition(16, load=0.5, seed=3)
        path = save_json(tmp_path / "sets" / "cs.json", conference_set_to_dict(cs))
        back = load_conference_set(path)
        assert [c.members for c in back] == [c.members for c in cs]


class _FakeResult:
    """Minimal result-contract conformer for edge-case tests."""

    def __init__(self, payload, ok=True, reason=None):
        self._payload = payload
        self.ok = ok
        self.reason = reason

    def as_dict(self):
        return dict(self._payload)


class _Nested:
    """A payload object serializable only through its own as_dict."""

    def __init__(self, value):
        self.value = value

    def as_dict(self):
        return {"kind": "nested", "value": self.value}


class TestResultToDict:
    def test_unknown_result_types_rejected(self):
        with pytest.raises(TypeError, match="result contract"):
            result_to_dict(object())
        with pytest.raises(TypeError, match="as_dict"):
            # ok/reason alone do not make a result
            result_to_dict(type("Half", (), {"ok": True, "reason": None})())

    def test_envelope_defaults(self):
        data = result_to_dict(_FakeResult({"x": 1}, ok=False, reason="ports"))
        assert data["kind"] == "_FakeResult"
        assert data["ok"] is False
        assert data["reason"] == "ports"
        assert data["schema"] == SCHEMA_VERSION

    def test_explicit_kind_wins_over_type_name(self):
        data = result_to_dict(_FakeResult({"kind": "custom", "x": 1}))
        assert data["kind"] == "custom"

    def test_nested_as_dict_payloads_serialize_recursively(self):
        data = result_to_dict(
            _FakeResult({"inner": _Nested(3), "items": [_Nested(4), 5]})
        )
        json.dumps(data)  # fully JSON-ready, no custom encoder needed
        assert data["inner"] == {"kind": "nested", "value": 3}
        assert data["items"] == [{"kind": "nested", "value": 4}, 5]

    def test_containers_normalized(self):
        data = result_to_dict(
            _FakeResult({"t": (1, 2), "s": {2, 1}, "m": {3: "x"}})
        )
        json.dumps(data)
        assert data["t"] == [1, 2]
        assert data["s"] == [1, 2]
        assert data["m"] == {"3": "x"}  # JSON keys are strings

    def test_non_serializable_field_rejected_with_path(self):
        with pytest.raises(TypeError, match=r"_FakeResult\.deep\.hole"):
            result_to_dict(_FakeResult({"deep": {"hole": object()}}))
        with pytest.raises(TypeError, match=r"_FakeResult\.row\[1\]"):
            result_to_dict(_FakeResult({"row": [1, object()]}))

    def test_real_verdicts_pass_through(self):
        from repro.core.healing import SubmitOutcome

        data = result_to_dict(SubmitOutcome("lost", 3, reason="capacity"))
        json.dumps(data)
        assert data["ok"] is False and data["schema"] == SCHEMA_VERSION


class TestRouteAndReportDicts:
    def test_route_dict_is_json_safe_and_faithful(self):
        net = build("omega", 16)
        from repro.core.conference import Conference

        route = route_conference(net, Conference.of([0, 5, 9], conference_id=7))
        data = route_to_dict(route)
        json.dumps(data)  # must not raise
        assert data["conference"]["id"] == 7
        assert data["taps"] == {str(p): t for p, t in route.taps.items()}
        assert {tuple(link) for link in data["links"]} == set(route.links)

    def test_conflict_report_dict(self):
        net = build("indirect-binary-cube", 8)
        from repro.core.conference import Conference

        routes = [
            route_conference(net, Conference.of(m, i))
            for i, m in enumerate([(0, 3), (1, 2)])
        ]
        report = analyze_conflicts(routes)
        data = conflict_report_to_dict(report)
        json.dumps(data)
        assert data["max_multiplicity"] == 2
        assert data["conflict_free"] is False
        assert data["worst_link"] == list(report.worst_link)
