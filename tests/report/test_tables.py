"""Tests for table rendering and CSV output."""

import csv

from repro.report.tables import format_value, render_table, write_csv


class TestFormatValue:
    def test_floats_rounded(self):
        assert format_value(0.123456) == "0.1235"

    def test_bools(self):
        assert format_value(True) == "yes"
        assert format_value(False) == "no"

    def test_strings_passthrough(self):
        assert format_value("omega") == "omega"


class TestRenderTable:
    def test_alignment_and_title(self):
        rows = [{"name": "a", "value": 1}, {"name": "longer", "value": 22}]
        text = render_table(rows, title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "name" in lines[1] and "value" in lines[1]
        assert len({len(l) for l in lines[1:]}) <= 2  # consistent widths

    def test_column_selection_and_missing_keys(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = render_table(rows, columns=["b", "a"])
        header = text.splitlines()[0]
        assert header.index("b") < header.index("a")

    def test_empty_rows(self):
        assert "(no rows)" in render_table([], title="x")


class TestWriteCsv:
    def test_round_trip(self, tmp_path):
        rows = [{"n": 8, "value": 1.5}, {"n": 16, "value": 2.5}]
        path = write_csv(tmp_path / "sub" / "out.csv", rows)
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back == [{"n": "8", "value": "1.5"}, {"n": "16", "value": "2.5"}]

    def test_empty_rows_produce_empty_file(self, tmp_path):
        path = write_csv(tmp_path / "empty.csv", [])
        assert path.read_text() == "\n" or path.read_text() == "\r\n"

    def test_extra_keys_ignored_with_columns(self, tmp_path):
        path = write_csv(tmp_path / "o.csv", [{"a": 1, "b": 2}], columns=["a"])
        with path.open() as fh:
            back = list(csv.DictReader(fh))
        assert back == [{"a": "1"}]
