"""Tests for the discrete-event engine."""

import pytest

from repro.sim.engine import EventLoop


class TestEventLoop:
    def test_runs_in_time_order(self):
        loop = EventLoop()
        seen = []
        loop.schedule(3.0, lambda lp: seen.append("c"))
        loop.schedule(1.0, lambda lp: seen.append("a"))
        loop.schedule(2.0, lambda lp: seen.append("b"))
        loop.run()
        assert seen == ["a", "b", "c"]
        assert loop.now == 3.0
        assert loop.processed == 3

    def test_fifo_among_ties(self):
        loop = EventLoop()
        seen = []
        for tag in "xyz":
            loop.schedule(1.0, lambda lp, t=tag: seen.append(t))
        loop.run()
        assert seen == ["x", "y", "z"]

    def test_until_leaves_future_events_pending(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda lp: seen.append(1))
        loop.schedule(5.0, lambda lp: seen.append(5))
        loop.run(until=2.0)
        assert seen == [1]
        assert loop.pending == 1
        assert loop.now == 2.0
        loop.run()
        assert seen == [1, 5]

    def test_event_at_horizon_still_runs(self):
        loop = EventLoop()
        seen = []
        loop.schedule(2.0, lambda lp: seen.append(2))
        loop.run(until=2.0)
        assert seen == [2]

    def test_actions_can_schedule_more(self):
        loop = EventLoop()
        seen = []

        def chain(lp):
            seen.append(lp.now)
            if len(seen) < 3:
                lp.schedule(1.0, chain)

        loop.schedule(0.0, chain)
        loop.run()
        assert seen == [0.0, 1.0, 2.0]

    def test_max_events_budget(self):
        loop = EventLoop()

        def forever(lp):
            lp.schedule(1.0, forever)

        loop.schedule(0.0, forever)
        loop.run(max_events=10)
        assert loop.processed == 10

    def test_until_advances_clock_when_heap_drains_early(self):
        # Regression: the heap running dry before the horizon used to
        # leave `now` at the last event instead of the requested time.
        loop = EventLoop()
        loop.schedule(1.0, lambda lp: None)
        loop.run(until=10.0)
        assert loop.now == 10.0
        assert loop.pending == 0

    def test_until_advances_clock_on_empty_heap(self):
        loop = EventLoop()
        loop.run(until=7.0)
        assert loop.now == 7.0

    def test_max_events_stop_does_not_jump_to_horizon(self):
        # A budget stop with work still pending must not teleport the
        # clock past the unprocessed events.
        loop = EventLoop()

        def forever(lp):
            lp.schedule(1.0, forever)

        loop.schedule(0.0, forever)
        loop.run(until=100.0, max_events=5)
        assert loop.processed == 5
        assert loop.pending == 1
        assert loop.now == 4.0

    def test_schedule_at_absolute_time(self):
        loop = EventLoop()
        seen = []
        loop.schedule(1.0, lambda lp: lp.schedule_at(5.0, lambda lp2: seen.append(lp2.now)))
        loop.run()
        assert seen == [5.0]

    def test_negative_delay_rejected(self):
        loop = EventLoop()
        with pytest.raises(ValueError):
            loop.schedule(-1.0, lambda lp: None)

    def test_reentrant_run_rejected(self):
        loop = EventLoop()
        loop.schedule(0.0, lambda lp: lp.run())
        with pytest.raises(RuntimeError):
            loop.run()
