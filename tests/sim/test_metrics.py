"""Tests for the simulation statistics ledgers."""

import pytest

from repro.sim.metrics import AvailabilityStats, TrafficStats


class TestTrafficSummaryReasons:
    def test_standard_reasons_always_present(self):
        summary = TrafficStats().summary()
        assert summary["blocked_capacity"] == 0
        assert summary["blocked_ports"] == 0

    def test_every_reason_gets_a_column(self):
        # Regression: the summary used to hardcode capacity/ports and
        # silently dropped any other reason from the tables.
        stats = TrafficStats()
        stats.offered = 4
        stats.block("capacity")
        stats.block("fault")
        stats.block("retry-exhausted")
        summary = stats.summary()
        assert summary["blocked_capacity"] == 1
        assert summary["blocked_fault"] == 1
        assert summary["blocked_retry-exhausted"] == 1
        assert summary["blocked_ports"] == 0
        assert stats.blocked_total == 3
        assert summary["blocking_probability"] == pytest.approx(0.75)


class TestAvailabilityLinkLevel:
    def test_link_mttr(self):
        stats = AvailabilityStats()
        stats.record_link_failed(10.0, (1, 0))
        stats.record_link_failed(12.0, (2, 3))
        stats.record_link_repaired(14.0, (1, 0))  # down 4
        stats.record_link_repaired(20.0, (2, 3))  # down 8
        assert stats.link_failures == 2
        assert stats.link_repairs == 2
        assert stats.link_mttr == pytest.approx(6.0)

    def test_mttr_empty(self):
        assert AvailabilityStats().link_mttr == 0.0


class TestAvailabilityOutages:
    def test_closed_outage_charges_downtime(self):
        stats = AvailabilityStats()
        stats.open_outage(7, 10.0, deadline=100.0)
        stats.close_outage(7, 25.0)
        assert stats.outage_time == pytest.approx(15.0)
        assert stats.restores == 1
        assert stats.conference_mttr == pytest.approx(15.0)

    def test_outage_capped_at_deadline(self):
        # A call restored after its natural end only lost the remainder.
        stats = AvailabilityStats()
        stats.open_outage(7, 10.0, deadline=20.0)
        stats.close_outage(7, 50.0)
        assert stats.outage_time == pytest.approx(10.0)

    def test_abandoned_outage_charges_to_deadline(self):
        stats = AvailabilityStats()
        stats.open_outage(7, 10.0, deadline=40.0)
        stats.abandon_outage(7)
        assert stats.outage_time == pytest.approx(30.0)
        assert stats.lost_calls == 1
        assert stats.restores == 0

    def test_finalize_closes_open_outages(self):
        stats = AvailabilityStats()
        stats.observe(0.0, live=2, degraded=0, down=0)
        stats.open_outage(3, 5.0, deadline=100.0)
        stats.finalize(20.0)
        assert stats.outage_time == pytest.approx(15.0)

    def test_close_unknown_cid_still_counts_restore(self):
        stats = AvailabilityStats()
        stats.close_outage(99, 5.0)
        assert stats.restores == 1
        assert stats.outage_time == 0.0


class TestAvailabilityIntegrals:
    def test_availability_ratio(self):
        stats = AvailabilityStats()
        stats.observe(0.0, live=2, degraded=0, down=0)
        stats.open_outage(1, 10.0, deadline=30.0)
        stats.observe(10.0, live=1, degraded=0, down=1)
        stats.close_outage(1, 20.0)
        stats.observe(20.0, live=2, degraded=0, down=0)
        stats.finalize(30.0)
        # live area: 2*10 + 1*10 + 2*10 = 50; outage: 10.
        assert stats.availability == pytest.approx(50.0 / 60.0)

    def test_degraded_fraction(self):
        stats = AvailabilityStats()
        stats.observe(0.0, live=4, degraded=0, down=0)
        stats.observe(10.0, live=4, degraded=2, down=0)
        stats.finalize(20.0)
        assert stats.degraded_fraction == pytest.approx(0.25)

    def test_time_travel_rejected(self):
        stats = AvailabilityStats()
        stats.observe(5.0, live=1, degraded=0, down=0)
        with pytest.raises(ValueError):
            stats.observe(4.0, live=1, degraded=0, down=0)

    def test_empty_run_is_fully_available(self):
        stats = AvailabilityStats()
        stats.finalize(0.0)
        assert stats.availability == 1.0
        assert stats.degraded_fraction == 0.0

    def test_summary_is_flat_and_rounded(self):
        stats = AvailabilityStats()
        stats.record_tap_move(3)
        stats.record_reroute(5)
        stats.record_drop("fault")
        summary = stats.summary()
        assert summary["tap_move_events"] == 1
        assert summary["taps_moved_total"] == 3
        assert summary["reroutes"] == 1
        assert summary["dropped"] == 1
        assert all(isinstance(v, (int, float)) for v in summary.values())
