"""Tests for the live fault injector and its timeline generator."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim.engine import EventLoop
from repro.sim.faults import (
    FaultInjector,
    FaultProcessConfig,
    FaultTransition,
    fault_universe,
    generate_fault_timeline,
)
from repro.topology.builders import build

NET = build("indirect-binary-cube", 16)


def script_of(*specs):
    """Shorthand: specs are (time, point, failed) triples."""
    return [FaultTransition(t, p, f) for t, p, f in specs]


class TestFaultTransition:
    def test_negative_time_rejected(self):
        with pytest.raises(ValueError):
            FaultTransition(-1.0, (1, 0), True)


class TestFaultProcessConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            FaultProcessConfig(mean_time_to_failure=0)
        with pytest.raises(ValueError):
            FaultProcessConfig(mean_time_to_repair=-1)


class TestFaultUniverse:
    def test_excludes_injections_by_default(self):
        universe = fault_universe(NET)
        assert all(1 <= level <= NET.n_stages for level, _ in universe)
        assert len(universe) == NET.n_stages * NET.n_ports

    def test_injections_optional(self):
        universe = fault_universe(NET, include_injections=True)
        assert (0, 0) in universe
        assert len(universe) == (NET.n_stages + 1) * NET.n_ports


class TestTimelineGeneration:
    def test_deterministic_by_seed(self):
        a = generate_fault_timeline(NET, horizon=500.0, seed=3)
        b = generate_fault_timeline(NET, horizon=500.0, seed=3)
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_fault_timeline(NET, horizon=500.0, seed=1)
        b = generate_fault_timeline(NET, horizon=500.0, seed=2)
        assert a != b

    def test_sorted_and_within_horizon(self):
        timeline = generate_fault_timeline(NET, horizon=300.0, seed=0)
        times = [tr.time for tr in timeline]
        assert times == sorted(times)
        assert all(0 < t < 300.0 for t in times)

    def test_per_point_alternation_starts_with_failure(self):
        timeline = generate_fault_timeline(
            NET, FaultProcessConfig(mean_time_to_failure=50.0), horizon=500.0, seed=0
        )
        state = {}
        for tr in timeline:
            assert state.get(tr.point, False) != tr.failed
            state[tr.point] = tr.failed

    def test_validates_as_script(self):
        timeline = generate_fault_timeline(NET, horizon=400.0, seed=5)
        FaultInjector(NET, script=timeline)  # must not raise


class TestInjectorValidation:
    def test_unsorted_script_rejected(self):
        with pytest.raises(ValueError, match="sorted"):
            FaultInjector(NET, script=script_of((5.0, (1, 0), True), (1.0, (1, 1), True)))

    def test_double_fail_rejected(self):
        with pytest.raises(ValueError, match="already dead"):
            FaultInjector(NET, script=script_of((1.0, (1, 0), True), (2.0, (1, 0), True)))

    def test_repair_of_healthy_point_rejected(self):
        with pytest.raises(ValueError, match="already alive"):
            FaultInjector(NET, script=script_of((1.0, (1, 0), False)))

    def test_needs_horizon_for_stochastic(self):
        with pytest.raises(ValueError, match="horizon"):
            FaultInjector(NET, process=FaultProcessConfig())

    def test_script_and_process_exclusive(self):
        with pytest.raises(ValueError):
            FaultInjector(NET, script=[], process=FaultProcessConfig())

    def test_double_start_rejected(self):
        injector = FaultInjector(NET, script=[])
        injector.start(EventLoop())
        with pytest.raises(RuntimeError):
            injector.start(EventLoop())


class TestInjectorExecution:
    def test_replays_script_on_loop(self):
        script = script_of(
            (1.0, (1, 0), True), (2.0, (2, 5), True), (3.0, (1, 0), False)
        )
        injector = FaultInjector(NET, script=script)
        loop = EventLoop()
        injector.start(loop)
        loop.run(until=1.5)
        assert injector.current_faults == {(1, 0)}
        loop.run(until=2.5)
        assert injector.current_faults == {(1, 0), (2, 5)}
        loop.run()
        assert injector.current_faults == {(2, 5)}
        assert injector.history == tuple(script)

    def test_listeners_see_updated_state(self):
        seen = []
        injector = FaultInjector(NET, script=script_of((1.0, (1, 0), True)))
        injector.subscribe(
            lambda loop, tr: seen.append((loop.now, tr.point, frozenset(injector.current_faults)))
        )
        loop = EventLoop()
        injector.start(loop)
        loop.run()
        # The fault set already includes the transition when listeners run.
        assert seen == [(1.0, (1, 0), frozenset({(1, 0)}))]

    def test_faults_at_reference_semantics(self):
        script = script_of(
            (1.0, (1, 0), True), (3.0, (1, 0), False), (3.0, (2, 2), True)
        )
        injector = FaultInjector(NET, script=script)
        assert injector.faults_at(0.5) == frozenset()
        assert injector.faults_at(1.0) == {(1, 0)}
        assert injector.faults_at(2.9) == {(1, 0)}
        assert injector.faults_at(3.0) == {(2, 2)}


@st.composite
def fault_scripts(draw):
    """Random but *consistent* scripts: per point, sorted alternating
    fail/repair transitions starting with a failure."""
    points = draw(
        st.lists(
            st.tuples(st.integers(1, 4), st.integers(0, 15)),
            min_size=1,
            max_size=6,
            unique=True,
        )
    )
    transitions = []
    for point in points:
        times = sorted(
            draw(
                st.lists(
                    st.floats(0.0, 100.0, allow_nan=False),
                    min_size=0,
                    max_size=6,
                    unique=True,
                )
            )
        )
        for i, t in enumerate(times):
            transitions.append(FaultTransition(t, point, failed=(i % 2 == 0)))
    transitions.sort(key=lambda tr: (tr.time, tr.point, tr.failed))
    return transitions


class TestLiveStateMatchesScript:
    @settings(max_examples=60, deadline=None)
    @given(script=fault_scripts(), probe=st.floats(0.0, 120.0, allow_nan=False))
    def test_live_fault_set_equals_scripted_union(self, script, probe):
        """The satellite property: at any time, the injector's live
        fault set equals the union of scripted failures minus repairs up
        to that time (the ``faults_at`` reference replay)."""
        injector = FaultInjector(NET, script=script)
        loop = EventLoop()
        injector.start(loop)
        loop.run(until=probe)
        assert injector.current_faults == injector.faults_at(probe)
        # And running to completion drains the whole script.
        loop.run()
        assert injector.current_faults == injector.faults_at(float("inf"))
        assert len(injector.history) == len(script)
