"""Tests for the canned simulation scenarios."""

import pytest

from repro.core.network import ConferenceNetwork
from repro.sim.scenarios import blocking_vs_dilation, placement_comparison, run_traffic
from repro.sim.traffic import TrafficConfig


class TestRunTraffic:
    def test_returns_stats(self):
        net = ConferenceNetwork.build("omega", 32, dilation=4)
        stats = run_traffic(net, TrafficConfig(), duration=100.0, seed=0)
        assert stats.offered > 0

    def test_duration_validated(self):
        net = ConferenceNetwork.build("omega", 32)
        with pytest.raises(ValueError):
            run_traffic(net, TrafficConfig(), duration=0)


class TestBlockingVsDilation:
    def test_blocking_monotone_in_dilation(self):
        """More link capacity can only reduce capacity blocking (up to
        simulation noise, controlled here by a long-ish run)."""
        rows = blocking_vs_dilation(
            "indirect-binary-cube", 32, [1, 2, 4, 8],
            config=TrafficConfig(arrival_rate=1.5, mean_holding=8.0),
            duration=600.0, seed=12,
        )
        probs = [r["capacity_blocking_probability"] for r in rows]
        assert probs[0] > probs[-1]
        assert probs[-1] <= 0.05

    def test_rows_carry_parameters(self):
        rows = blocking_vs_dilation("omega", 16, [1, 2], duration=50.0)
        assert [r["dilation"] for r in rows] == [1, 2]
        assert all(r["topology"] == "omega" for r in rows)


class TestPlacementComparison:
    def test_aligned_beats_uniform_on_cube(self):
        out = placement_comparison(
            "indirect-binary-cube", 32, dilation=1,
            config=TrafficConfig(arrival_rate=2.0, mean_holding=8.0),
            duration=400.0, seed=5,
        )
        assert out["aligned"].blocked["capacity"] == 0
        assert out["uniform"].blocked["capacity"] > 0

    def test_keys(self):
        out = placement_comparison("omega", 16, duration=50.0)
        assert set(out) == {"uniform", "aligned"}
