"""Tests for the canned simulation scenarios."""

import pytest

from repro.core.healing import RetryPolicy
from repro.core.network import ConferenceNetwork
from repro.sim.faults import FaultProcessConfig
from repro.sim.scenarios import (
    blocking_vs_dilation,
    placement_comparison,
    run_availability,
    run_traffic,
)
from repro.sim.traffic import TrafficConfig


class TestRunTraffic:
    def test_returns_stats(self):
        net = ConferenceNetwork.build("omega", 32, dilation=4)
        stats = run_traffic(net, TrafficConfig(), duration=100.0, seed=0)
        assert stats.offered > 0

    def test_duration_validated(self):
        net = ConferenceNetwork.build("omega", 32)
        with pytest.raises(ValueError):
            run_traffic(net, TrafficConfig(), duration=0)


class TestBlockingVsDilation:
    def test_blocking_monotone_in_dilation(self):
        """More link capacity can only reduce capacity blocking (up to
        simulation noise, controlled here by a long-ish run)."""
        rows = blocking_vs_dilation(
            "indirect-binary-cube", 32, [1, 2, 4, 8],
            config=TrafficConfig(arrival_rate=1.5, mean_holding=8.0),
            duration=600.0, seed=12,
        )
        probs = [r["capacity_blocking_probability"] for r in rows]
        assert probs[0] > probs[-1]
        assert probs[-1] <= 0.05

    def test_rows_carry_parameters(self):
        rows = blocking_vs_dilation("omega", 16, [1, 2], duration=50.0)
        assert [r["dilation"] for r in rows] == [1, 2]
        assert all(r["topology"] == "omega" for r in rows)


class TestRunAvailability:
    KW = dict(
        dilation=2,
        config=TrafficConfig(arrival_rate=1.0, mean_holding=10.0),
        process=FaultProcessConfig(mean_time_to_failure=300.0, mean_time_to_repair=15.0),
        retry=RetryPolicy(max_retries=5, base_delay=1.0, max_delay=20.0),
        duration=300.0,
    )

    def test_accounting_is_coherent(self):
        run = run_availability("extra-stage-cube", 16, seed=0, **self.KW)
        assert run.traffic.offered > 0
        assert 0.0 < run.availability.availability <= 1.0
        assert run.availability.link_failures >= run.availability.link_repairs
        summary = run.summary()
        assert {"offered", "availability", "lost_calls", "link_failures"} <= set(summary)

    def test_same_seed_byte_identical(self):
        # The acceptance bar: the whole run — fault process, traffic,
        # retry jitter — reproduces exactly from one seed.
        a = run_availability("extra-stage-cube", 16, seed=42, **self.KW)
        b = run_availability("extra-stage-cube", 16, seed=42, **self.KW)
        assert a.summary() == b.summary()
        assert a.timeline == b.timeline

    def test_different_seeds_differ(self):
        a = run_availability("extra-stage-cube", 16, seed=1, **self.KW)
        b = run_availability("extra-stage-cube", 16, seed=2, **self.KW)
        assert a.summary() != b.summary()

    def test_fault_timeline_shared_across_relay_setting(self):
        # The relay ablation must face the identical fault process.
        on = run_availability("extra-stage-cube", 16, relay_enabled=True, seed=7, **self.KW)
        off = run_availability("extra-stage-cube", 16, relay_enabled=False, seed=7, **self.KW)
        assert on.timeline == off.timeline


class TestPlacementComparison:
    def test_aligned_beats_uniform_on_cube(self):
        out = placement_comparison(
            "indirect-binary-cube", 32, dilation=1,
            config=TrafficConfig(arrival_rate=2.0, mean_holding=8.0),
            duration=400.0, seed=5,
        )
        assert out["aligned"].blocked["capacity"] == 0
        assert out["uniform"].blocked["capacity"] > 0

    def test_keys(self):
        out = placement_comparison("omega", 16, duration=50.0)
        assert set(out) == {"uniform", "aligned"}
