"""Tests for the conference traffic model and statistics."""

import pytest

from repro.core.admission import AdmissionController
from repro.core.network import ConferenceNetwork
from repro.sim.engine import EventLoop
from repro.sim.metrics import TrafficStats
from repro.sim.traffic import ConferenceTrafficSource, TrafficConfig


def run_source(topology="indirect-binary-cube", ports=32, dilation=4, duration=200.0,
               seed=0, **cfg):
    network = ConferenceNetwork.build(topology, ports, dilation=dilation)
    source = ConferenceTrafficSource(
        AdmissionController(network), TrafficConfig(**cfg), seed=seed
    )
    loop = EventLoop()
    source.start(loop)
    loop.run(until=duration)
    return source


class TestTrafficConfig:
    def test_validation(self):
        with pytest.raises(ValueError):
            TrafficConfig(arrival_rate=0)
        with pytest.raises(ValueError):
            TrafficConfig(mean_holding=-1)
        with pytest.raises(ValueError):
            TrafficConfig(mean_size=1.0, min_size=2)
        with pytest.raises(ValueError):
            TrafficConfig(placement="diagonal")
        with pytest.raises(ValueError):
            TrafficConfig(min_size=0)

    def test_offered_erlangs(self):
        assert TrafficConfig(arrival_rate=2.0, mean_holding=5.0).offered_erlangs == 10.0


class TestAccounting:
    def test_offered_splits_into_admitted_and_blocked(self):
        src = run_source(arrival_rate=2.0, mean_holding=5.0)
        stats = src.stats
        assert stats.offered == stats.admitted + stats.blocked_total
        assert stats.completed <= stats.admitted
        assert stats.admitted - stats.completed == src.live_calls

    def test_determinism_by_seed(self):
        a = run_source(seed=99).stats.summary()
        b = run_source(seed=99).stats.summary()
        assert a == b

    def test_different_seeds_differ(self):
        a = run_source(seed=1, duration=300).stats
        b = run_source(seed=2, duration=300).stats
        assert (a.offered, a.admitted) != (b.offered, b.admitted)

    def test_occupancy_tracking(self):
        src = run_source(arrival_rate=3.0, mean_holding=10.0)
        assert src.stats.peak_occupancy >= 1
        assert 0 < src.stats.mean_occupancy <= src.stats.peak_occupancy

    def test_summary_keys(self):
        summary = run_source().stats.summary()
        assert {"offered", "admitted", "blocking_probability",
                "capacity_blocking_probability"} <= set(summary)


class TestPlacementModes:
    def test_aligned_cube_never_capacity_blocks_at_dilation_one(self):
        """The Yang-2001 guarantee, dynamically: aligned placement on the
        cube needs no dilation at all."""
        src = run_source(dilation=1, duration=500, arrival_rate=2.0,
                         mean_holding=8.0, placement="aligned")
        assert src.stats.blocked["capacity"] == 0
        assert src.stats.admitted > 0

    def test_uniform_cube_capacity_blocks_at_dilation_one(self):
        src = run_source(dilation=1, duration=500, arrival_rate=2.0,
                         mean_holding=8.0, placement="uniform")
        assert src.stats.blocked["capacity"] > 0

    def test_ports_block_when_network_full(self):
        src = run_source(dilation=32, duration=500, arrival_rate=5.0,
                         mean_holding=50.0, mean_size=8.0)
        assert src.stats.blocked["ports"] > 0


class TestStatsUnit:
    def test_blocking_probability_empty(self):
        assert TrafficStats().blocking_probability == 0.0

    def test_occupancy_rejects_time_travel(self):
        stats = TrafficStats()
        stats.observe_occupancy(5.0, 2)
        with pytest.raises(ValueError):
            stats.observe_occupancy(4.0, 1)

    def test_time_weighted_mean(self):
        stats = TrafficStats()
        stats.observe_occupancy(0.0, 0)
        stats.observe_occupancy(10.0, 4)  # 0 live for 10s
        stats.observe_occupancy(20.0, 0)  # 4 live for 10s
        assert stats.mean_occupancy == pytest.approx(2.0)
        assert stats.peak_occupancy == 4
