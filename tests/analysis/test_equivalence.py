"""Tests for topological-equivalence machinery."""

import pytest

from repro.analysis.equivalence import (
    find_port_relabelling,
    path_matrix_signature,
    same_structure,
)
from repro.topology.builders import build
from repro.topology.network import MultistageNetwork, Stage
from repro.topology.permutations import identity


class TestSameStructure:
    def test_paper_trio_is_equivalent(self):
        nets = [build(n, 16) for n in ("baseline", "omega", "indirect-binary-cube")]
        for a in nets:
            for b in nets:
                assert same_structure(a, b)

    def test_size_mismatch(self):
        assert not same_structure(build("omega", 8), build("omega", 16))

    def test_degenerate_differs(self):
        ident = identity(8)
        degenerate = MultistageNetwork(8, [Stage(ident, ident)] * 3, name="deg")
        assert not same_structure(degenerate, build("omega", 8))


class TestSignatures:
    def test_signature_separates_functionally_different_networks(self):
        """Omega and the cube both realize the identity when straight but
        route through different internal rows."""
        sig_omega = path_matrix_signature(build("omega", 8))
        sig_cube = path_matrix_signature(build("indirect-binary-cube", 8))
        assert sig_omega != sig_cube

    def test_signature_is_deterministic(self):
        assert path_matrix_signature(build("baseline", 8)) == path_matrix_signature(
            build("baseline", 8)
        )


class TestRelabelling:
    def test_identity_relabelling_for_same_network(self):
        net = build("omega", 4)
        found = find_port_relabelling(net, net)
        assert found is not None
        pi, po = found
        assert sorted(pi) == [0, 1, 2, 3]

    def test_relabelling_exists_between_omega_and_cube(self):
        a = build("omega", 4)
        b = build("indirect-binary-cube", 4)
        assert find_port_relabelling(a, b) is not None

    def test_relabelling_exists_between_baseline_and_cube(self):
        a = build("baseline", 4)
        b = build("indirect-binary-cube", 4)
        assert find_port_relabelling(a, b) is not None

    def test_size_guard(self):
        with pytest.raises(ValueError):
            find_port_relabelling(build("omega", 16), build("omega", 16))

    def test_mismatched_sizes_return_none(self):
        assert find_port_relabelling(build("omega", 4), build("omega", 8)) is None
