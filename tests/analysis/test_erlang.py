"""Tests for the analytic blocking approximation."""


import pytest

from repro.analysis.erlang import (
    erlang_b,
    estimate_link_model,
    predicted_blocking,
)
from repro.topology.builders import build


class TestErlangB:
    def test_known_values(self):
        # Classic table entries.
        assert erlang_b(1.0, 1) == pytest.approx(0.5)
        assert erlang_b(2.0, 2) == pytest.approx(0.4)
        assert erlang_b(10.0, 10) == pytest.approx(0.2146, abs=1e-3)

    def test_zero_load(self):
        assert erlang_b(0.0, 5) == 0.0

    def test_zero_channels_always_blocks(self):
        assert erlang_b(3.0, 0) == 1.0

    def test_monotone_in_channels(self):
        values = [erlang_b(5.0, c) for c in range(1, 12)]
        assert values == sorted(values, reverse=True)

    def test_monotone_in_load(self):
        values = [erlang_b(a, 4) for a in (0.5, 1, 2, 4, 8)]
        assert values == sorted(values)

    def test_validation(self):
        with pytest.raises(ValueError):
            erlang_b(-1, 1)
        with pytest.raises(ValueError):
            erlang_b(1, -1)


class TestLinkModel:
    def test_usage_probabilities_are_probabilities(self):
        net = build("indirect-binary-cube", 32)
        model = estimate_link_model(net, samples=150, seed=0)
        assert model.samples == 150
        assert all(0 < q <= 1 for q in model.usage.values())
        assert model.mean_route_links > 0
        assert 0 < model.hottest_link_usage <= 1

    def test_usage_mass_matches_mean_route_size(self):
        net = build("omega", 16)
        model = estimate_link_model(net, samples=100, seed=1)
        assert sum(model.usage.values()) == pytest.approx(model.mean_route_links, rel=1e-9)


class TestPredictedBlocking:
    def test_monotone_in_dilation(self):
        net = build("indirect-binary-cube", 32)
        model = estimate_link_model(net, samples=200, seed=2)
        preds = [
            predicted_blocking(net, offered_erlangs=8.0, dilation=c, model=model)
            for c in (1, 2, 4, 8)
        ]
        assert preds == sorted(preds, reverse=True)
        assert preds[0] > 0.3
        assert preds[-1] < 0.05

    def test_zero_at_huge_dilation(self):
        net = build("omega", 16)
        model = estimate_link_model(net, samples=100, seed=3)
        assert predicted_blocking(net, 4.0, dilation=64, model=model) < 1e-6

    def test_dilation_validated(self):
        net = build("omega", 16)
        with pytest.raises(ValueError):
            predicted_blocking(net, 4.0, dilation=0)
