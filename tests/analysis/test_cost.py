"""Tests for the hardware cost models."""

import pytest

from repro.analysis.cost import (
    cost_table,
    crossbar_cost,
    direct_network_cost,
    yang2001_cost,
)


class TestFormulas:
    def test_crossbar_is_quadratic(self):
        c = crossbar_cost(64)
        assert c.crosspoints == 64 * 64
        assert c.total_gate_equivalents == 2 * 64 * 64
        assert c.dilation == 1

    def test_yang2001_components(self):
        c = yang2001_cost(64)  # n = 6
        assert c.stages == 6
        assert c.crosspoints == 4 * 6 * 32
        assert c.mux_inputs == 64 * 7
        assert c.dilation == 1

    def test_direct_default_dilation_is_worst_case(self):
        c = direct_network_cost(64)
        assert c.dilation == 8  # 2**(6//2)
        assert c.crosspoints == 4 * 6 * 32 * 8

    def test_direct_explicit_dilation(self):
        c = direct_network_cost(64, dilation=2, topology="omega")
        assert c.dilation == 2
        assert "omega" in c.design

    def test_relay_toggle(self):
        assert direct_network_cost(64, relay=False).mux_inputs == 0

    def test_validation(self):
        with pytest.raises(ValueError):
            direct_network_cost(64, dilation=0)
        with pytest.raises(ValueError):
            crossbar_cost(6)


class TestComparisons:
    def test_yang2001_beats_crossbar_at_scale(self):
        """The headline motivation: multistage + relay is asymptotically
        cheaper than a conference crossbar."""
        for n_ports in (64, 256, 1024, 4096):
            assert (
                yang2001_cost(n_ports).total_gate_equivalents
                < crossbar_cost(n_ports).total_gate_equivalents
            )

    def test_direct_worst_case_dilation_eventually_beats_crossbar(self):
        """Even paying Θ(sqrt(N)) dilation, a direct network is
        O(N^1.5 log N) vs the crossbar's Θ(N^2)."""
        assert (
            direct_network_cost(4096).total_gate_equivalents
            < crossbar_cost(4096).total_gate_equivalents
        )

    def test_direct_costs_more_than_aligned_design(self):
        """The price of arbitrary placement: worst-case dilation always
        costs more hardware than the Yang-2001 aligned design."""
        for n_ports in (16, 64, 256):
            assert (
                direct_network_cost(n_ports).total_gate_equivalents
                > yang2001_cost(n_ports).total_gate_equivalents
            )

    def test_cost_scaling_is_monotone(self):
        totals = [yang2001_cost(1 << n).total_gate_equivalents for n in range(2, 12)]
        assert totals == sorted(totals)


class TestTable:
    def test_cost_table_rows(self):
        rows = cost_table([16, 64])
        assert len(rows) == 8
        designs = {r.design for r in rows}
        assert "crossbar" in designs
        assert any(d.startswith("yang2001") for d in designs)

    def test_row_dict_shape(self):
        row = crossbar_cost(16).row()
        assert row["N"] == 16
        assert row["total"] == row["crosspoints"] + row["mixer_inputs"] + row["mux_inputs"]
