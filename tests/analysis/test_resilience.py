"""Tests for fault injection and the relay's redundancy value."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.resilience import (
    availability_over_time,
    critical_points,
    random_link_faults,
    retry_ablation,
    survivability,
)
from repro.core.conference import Conference
from repro.core.healing import RetryPolicy
from repro.core.routing import RoutingPolicy, TapPolicy, UnroutableError, route_conference
from repro.sim.faults import FaultProcessConfig
from repro.sim.traffic import TrafficConfig
from repro.topology.builders import build


class TestFaultInjection:
    def test_random_faults_shape(self):
        net = build("omega", 16)
        faults = random_link_faults(net, 5, seed=0)
        assert len(faults) == 5
        assert all(1 <= t <= net.n_stages for t, _ in faults)

    def test_injection_faults_optional(self):
        net = build("omega", 16)
        faults = random_link_faults(net, 70, seed=0, include_injections=True)
        assert any(t == 0 for t, _ in faults)

    def test_too_many_faults_rejected(self):
        net = build("omega", 8)
        with pytest.raises(ValueError):
            random_link_faults(net, 1000)


class TestFaultAwareRouting:
    def test_banyan_routes_have_no_internal_redundancy(self):
        """On a banyan network, killing ANY link of a conference's route
        makes it unroutable: paths are unique and, on the cube, a bit
        once resolved can never be re-flipped to reach a member's row."""
        net = build("indirect-binary-cube", 16)
        conf = Conference.of([0, 1])
        base = route_conference(net, conf)
        for point in base.links:
            with pytest.raises(UnroutableError):
                route_conference(net, conf, faults=frozenset({point}))

    def test_extra_stage_restores_routability(self):
        """The same fault is survivable on the extra-stage cube: bit 0
        is toggled again by the redundant stage, so member 0 reaches a
        late tap through row 1."""
        net = build("extra-stage-cube", 16)
        conf = Conference.of([0, 1])
        base = route_conference(net, conf)
        dead = frozenset({(1, 0)})
        rerouted = route_conference(net, conf, faults=dead)
        assert (1, 0) not in rerouted.points
        assert rerouted.taps[0] == net.n_stages  # the redundant stage
        assert rerouted.taps[1] == base.taps[1]
        full = conf.full_mask
        assert all(rerouted.mask_at(t, j) == full for j, t in rerouted.taps.items())

    def test_dead_injection_is_unroutable(self):
        net = build("indirect-binary-cube", 16)
        with pytest.raises(UnroutableError):
            route_conference(net, Conference.of([0, 1]), faults=frozenset({(0, 0)}))

    def test_relay_off_is_fragile(self):
        """Without the relay, killing any link of the route kills it."""
        net = build("indirect-binary-cube", 16)
        conf = Conference.of([0, 1])
        policy = RoutingPolicy(tap_policy=TapPolicy.FINAL)
        base = route_conference(net, conf, policy)
        for point in base.links:
            with pytest.raises(UnroutableError):
                route_conference(net, conf, policy, faults=frozenset({point}))

    @settings(max_examples=40, deadline=None)
    @given(
        members=st.sets(st.integers(0, 15), min_size=2, max_size=5),
        seed=st.integers(0, 1000),
    )
    def test_fault_aware_routes_never_touch_faults(self, members, seed):
        net = build("omega", 16)
        faults = random_link_faults(net, 6, seed=seed)
        try:
            route = route_conference(net, Conference.of(members), faults=faults)
        except UnroutableError:
            return
        assert not (route.points & faults)
        # And it still delivers the full combination at every tap.
        full = (1 << len(members)) - 1
        for port, t in route.taps.items():
            assert route.mask_at(t, port) == full


class TestSurvivability:
    def confs(self):
        return [Conference.of(m, i) for i, m in enumerate([(0, 1), (2, 7), (4, 5, 6), (8, 15)])]

    def test_no_faults_everything_survives(self):
        net = build("indirect-binary-cube", 16)
        rep = survivability(net, self.confs(), frozenset())
        assert rep.survival_rate == 1.0

    def test_relay_strictly_helps(self):
        """Across fault draws, earliest-tap routing survives at least as
        often as final-tap routing, and strictly more in aggregate."""
        net = build("indirect-binary-cube", 16)
        relay_total, fixed_total = 0, 0
        for seed in range(30):
            faults = random_link_faults(net, 4, seed=seed)
            relay_total += survivability(net, self.confs(), faults, relay_enabled=True).routed
            fixed_total += survivability(net, self.confs(), faults, relay_enabled=False).routed
        assert relay_total > fixed_total

    def test_extra_stage_networks_help_further(self):
        """The Benes-cube's redundant stages give taps the banyan cube
        cannot offer, improving survival under the same fault pattern."""
        cube = build("indirect-binary-cube", 16)
        benes = build("benes-cube", 16)
        cube_total, benes_total = 0, 0
        for seed in range(30):
            faults = random_link_faults(cube, 6, seed=seed)
            # The Benes network has more levels; its faults are a superset
            # pattern-wise, so reuse the cube's fault draw (valid levels).
            cube_total += survivability(cube, self.confs(), faults).routed
            benes_total += survivability(benes, self.confs(), faults).routed
        assert benes_total >= cube_total


class TestAvailabilityOverTime:
    PROCESS = FaultProcessConfig(mean_time_to_failure=400.0, mean_time_to_repair=20.0)
    RETRY = RetryPolicy(max_retries=10, base_delay=1.0, max_delay=40.0)

    def rows(self, seed=0):
        return availability_over_time(
            "extra-stage-cube", 16,
            process=self.PROCESS, duration=500.0, retry=self.RETRY, seed=seed,
        )

    def test_relay_on_beats_relay_off(self):
        """The paper's redundancy claim, live: under the identical fault
        timeline and identical steady population, the relay's late-tap
        freedom strictly lifts availability on the extra-stage cube."""
        by = {r["relay"]: r for r in self.rows()}
        assert by["on"]["availability"] > by["off"]["availability"]

    def test_both_rows_share_the_fault_process(self):
        by = {r["relay"]: r for r in self.rows()}
        assert by["on"]["link_failures"] == by["off"]["link_failures"]
        assert by["on"]["link_mttr"] == by["off"]["link_mttr"]

    def test_deterministic(self):
        assert self.rows(seed=3) == self.rows(seed=3)


class TestRetryAblation:
    def rows(self):
        return retry_ablation(
            "extra-stage-cube", 16,
            config=TrafficConfig(arrival_rate=1.0, mean_holding=12.0),
            process=FaultProcessConfig(mean_time_to_failure=300.0, mean_time_to_repair=15.0),
            retry=RetryPolicy(max_retries=8, base_delay=1.0, max_delay=30.0),
            duration=400.0, dilation=2, seed=0,
        )

    def test_backoff_loses_fewer_calls(self):
        by = {r["retry"]: r for r in self.rows()}
        assert by["backoff"]["lost_calls"] < by["no-retry"]["lost_calls"]

    def test_equal_offered_load(self):
        by = {r["retry"]: r for r in self.rows()}
        assert by["backoff"]["offered"] == by["no-retry"]["offered"]


class TestCriticalPoints:
    def test_relay_shrinks_critical_sets(self):
        net = build("indirect-binary-cube", 16)
        conf = Conference.of([0, 1])
        with_relay = critical_points(net, conf, relay_enabled=True)
        without = critical_points(net, conf, relay_enabled=False)
        assert len(with_relay) < len(without)
        # Injections are always critical.
        assert {(0, 0), (0, 1)} <= with_relay

    def test_without_relay_every_point_is_critical(self):
        net = build("indirect-binary-cube", 16)
        conf = Conference.of([0, 5])
        base = route_conference(net, conf, RoutingPolicy(tap_policy=TapPolicy.FINAL))
        assert critical_points(net, conf, relay_enabled=False) == base.points
