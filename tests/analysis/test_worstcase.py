"""Tests for the worst-case search machinery.

These are the reproduction's load-bearing results: the cube law is
tight (constructively and by exhaustive search), baseline matches it,
and omega exceeds it exactly as the tap-slot analysis predicts.
"""

import pytest

from repro.analysis.theory import (
    cube_link_multiplicity,
    general_link_multiplicity_bound,
    max_multiplicity_bound,
)
from repro.analysis.worstcase import (
    cube_adversarial_set,
    exhaustive_max_multiplicity,
    matching_lower_bound,
    matching_stage_profile,
    randomized_search,
)
from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.topology.builders import build


class TestAdversarialConstruction:
    @pytest.mark.parametrize("n_ports", [4, 8, 16, 32, 64])
    def test_achieves_cube_law_at_every_level(self, n_ports):
        n = n_ports.bit_length() - 1
        net = build("indirect-binary-cube", n_ports)
        for level in range(1, n + 1):
            cs = cube_adversarial_set(n_ports, level)
            routes = [route_conference(net, c) for c in cs]
            report = analyze_conflicts(routes)
            assert report.stage_profile[level - 1] == cube_link_multiplicity(level, n)

    def test_default_level_hits_network_worst_case(self):
        net = build("indirect-binary-cube", 64)
        cs = cube_adversarial_set(64)
        routes = [route_conference(net, c) for c in cs]
        assert analyze_conflicts(routes).max_multiplicity == max_multiplicity_bound(6)

    def test_set_is_valid_and_pairwise_disjoint(self):
        cs = cube_adversarial_set(32)  # ConferenceSet validates on build
        assert all(c.size == 2 for c in cs)

    def test_level_bounds(self):
        with pytest.raises(ValueError):
            cube_adversarial_set(16, 0)
        with pytest.raises(ValueError):
            cube_adversarial_set(16, 5)


class TestExhaustive:
    """Ground truth over every disjoint family at N=4 and N=8."""

    @pytest.mark.parametrize(
        "name,n_ports,expected",
        [
            ("indirect-binary-cube", 4, 2),
            ("baseline", 4, 2),
            ("omega", 4, 2),
            ("indirect-binary-cube", 8, 2),
            ("baseline", 8, 2),
            # Omega genuinely exceeds the cube law at N=8.
            ("omega", 8, 3),
        ],
    )
    def test_exhaustive_worst_case(self, name, n_ports, expected):
        res = exhaustive_max_multiplicity(build(name, n_ports))
        assert res.multiplicity == expected
        assert res.exact
        assert res.witness is not None
        # The witness reproduces its own multiplicity.
        net = build(name, n_ports)
        routes = [route_conference(net, c) for c in res.witness]
        assert analyze_conflicts(routes).max_multiplicity == expected

    def test_exhaustive_respects_general_bound(self):
        for name in ("indirect-binary-cube", "baseline", "omega"):
            res = exhaustive_max_multiplicity(build(name, 8))
            link_level = res.link[0]
            assert res.multiplicity <= general_link_multiplicity_bound(link_level, 3)


class TestMatching:
    def test_matching_matches_exhaustive_at_small_n(self):
        """2-member conferences already realize the worst case at N=8."""
        for name in ("indirect-binary-cube", "baseline", "omega"):
            exact = exhaustive_max_multiplicity(build(name, 8)).multiplicity
            pairs = matching_lower_bound(build(name, 8)).multiplicity
            assert pairs == exact

    @pytest.mark.parametrize(
        "name,profile",
        [
            ("indirect-binary-cube", (2, 4, 2, 1)),
            ("baseline", (2, 4, 2, 1)),
            ("omega", (2, 4, 3, 1)),
        ],
    )
    def test_stage_profiles_n16(self, name, profile):
        assert matching_stage_profile(build(name, 16)) == profile

    @pytest.mark.parametrize(
        "name,profile",
        [
            ("indirect-binary-cube", (2, 4, 4, 2, 1)),
            ("baseline", (2, 4, 4, 2, 1)),
            ("omega", (2, 4, 6, 3, 1)),
        ],
    )
    def test_stage_profiles_n32(self, name, profile):
        assert matching_stage_profile(build(name, 32)) == profile

    def test_matching_witness_is_reproducible(self):
        res = matching_lower_bound(build("omega", 16))
        net = build("omega", 16)
        routes = [route_conference(net, c) for c in res.witness]
        assert analyze_conflicts(routes).max_multiplicity >= res.multiplicity

    def test_profiles_respect_bounds(self):
        for name in ("indirect-binary-cube", "baseline", "omega"):
            profile = matching_stage_profile(build(name, 16))
            for t, value in enumerate(profile, start=1):
                assert value <= general_link_multiplicity_bound(t, 4)


class TestRandomizedSearch:
    def test_finds_conflicts_and_is_deterministic(self):
        net = build("indirect-binary-cube", 32)
        a = randomized_search(net, trials=20, seed=11)
        b = randomized_search(net, trials=20, seed=11)
        assert a.multiplicity == b.multiplicity >= 2
        assert not a.exact

    def test_witness_checks_out(self):
        net = build("omega", 32)
        res = randomized_search(net, trials=20, seed=3)
        routes = [route_conference(net, c) for c in res.witness]
        loads = analyze_conflicts(routes)
        assert loads.max_multiplicity >= res.multiplicity

    def test_never_beats_matching_optimum(self):
        net = build("indirect-binary-cube", 16)
        rand = randomized_search(net, trials=40, seed=5)
        exact = matching_lower_bound(net)
        assert rand.multiplicity <= exact.multiplicity
