"""Tests that the closed-form theory matches the generic engine."""

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import theory
from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.topology.builders import build


class TestBounds:
    def test_cube_law_values(self):
        assert [theory.cube_link_multiplicity(t, 4) for t in (1, 2, 3, 4)] == [2, 4, 2, 1]
        assert [theory.cube_link_multiplicity(t, 5) for t in (1, 2, 3, 4, 5)] == [2, 4, 4, 2, 1]

    def test_general_bound_dominates_cube_law(self):
        for n in range(1, 10):
            for t in range(1, n + 1):
                assert theory.general_link_multiplicity_bound(t, n) >= theory.cube_link_multiplicity(t, n)

    def test_omega_bound_values(self):
        # n=3: (2, 3, 1); n=4: (2, 4, 3, 1)
        assert [theory.omega_link_multiplicity_bound(t, 3) for t in (1, 2, 3)] == [2, 3, 1]
        assert [theory.omega_link_multiplicity_bound(t, 4) for t in (1, 2, 3, 4)] == [2, 4, 3, 1]

    def test_max_multiplicity(self):
        assert theory.max_multiplicity_bound(4) == 4
        assert theory.max_multiplicity_bound(5) == 4
        assert theory.max_multiplicity_bound(3, topology="omega") == 3
        assert theory.max_multiplicity_bound(5, topology="omega") == 7
        assert theory.max_multiplicity_bound(4, topology="omega") == 4

    def test_profiles(self):
        assert theory.stage_profile_law(4) == (2, 4, 2, 1)
        assert theory.stage_profile_law(4, topology="omega") == (2, 4, 3, 1)

    def test_tap_slots(self):
        assert theory.relay_tap_slots_bound(1, 4) == 15
        assert theory.relay_tap_slots_bound(4, 4) == 1

    def test_bounds_validation(self):
        with pytest.raises(ValueError):
            theory.cube_link_multiplicity(0, 4)
        with pytest.raises(ValueError):
            theory.relay_tap_slots_bound(5, 4)
        with pytest.raises(ValueError):
            theory.max_multiplicity_bound(0)


class TestCubeClosedForms:
    def test_tap_level_examples(self):
        assert theory.cube_tap_level([0, 1], 3) == 1
        assert theory.cube_tap_level([0, 7], 3) == 3
        assert theory.cube_tap_level([6], 3) == 0

    def test_closed_form_matches_engine_exhaustively(self):
        """Every one of the 255 conferences at N=8: the closed-form point
        set equals the generic route's point set."""
        net = build("indirect-binary-cube", 8)
        for size in range(1, 9):
            for members in itertools.combinations(range(8), size):
                route = route_conference(net, Conference.of(members))
                assert route.points == theory.cube_route_points(members, 8), members

    @settings(max_examples=60, deadline=None)
    @given(st.sets(st.integers(0, 31), min_size=1, max_size=8))
    def test_closed_form_matches_engine_sampled(self, members):
        net = build("indirect-binary-cube", 32)
        route = route_conference(net, Conference.of(members))
        assert route.points == theory.cube_route_points(tuple(members), 32)

    @settings(max_examples=40, deadline=None)
    @given(
        st.sets(st.integers(0, 15), min_size=1, max_size=6),
        st.integers(1, 4),
        st.integers(0, 15),
    )
    def test_uses_link_predicate_matches_rows(self, members, t, r):
        members = tuple(sorted(members))
        uses = theory.cube_uses_link(members, t, r, 16)
        assert uses == (r in theory.cube_route_rows(members, t, 16))

    def test_route_stays_in_enclosing_block(self):
        members = (16, 19, 21)
        for t in range(1, 6):
            rows = theory.cube_route_rows(members, t, 32)
            assert all(16 <= r < 24 for r in rows)

    def test_accepts_conference_objects(self):
        conf = Conference.of([0, 5])
        assert theory.cube_route_points(conf, 8) == theory.cube_route_points((0, 5), 8)


class TestOmegaClosedForms:
    def test_reachability_formula_matches_engine(self):
        net = build("omega", 16)
        for src in range(16):
            for t in range(5):
                reached = net.reachable_rows(0, src, t)
                for r in range(16):
                    assert theory.omega_reachable_mask(src, t, r, 4) == (r in reached)

    def test_full_combination_rows(self):
        # Members 0 and 8 share low bits 000 -> combined on rows 0..1 at t=1.
        assert theory.omega_full_combination_rows([0, 8], 1, 4) == frozenset({0, 1})
        # Members 0 and 1 share no suffix -> only the full network combines.
        assert theory.omega_full_combination_rows([0, 1], 3, 4) == frozenset()
        assert len(theory.omega_full_combination_rows([0, 1], 4, 4)) == 16

    def test_tap_levels_match_engine(self):
        net = build("omega", 16)
        for members in [(0, 8), (0, 1), (3, 7, 11), (5,), (2, 10)]:
            route = route_conference(net, Conference.of(members))
            for m in members:
                assert route.taps[m] == theory.omega_tap_level(members, m, 4)

    def test_tap_level_requires_membership(self):
        with pytest.raises(ValueError):
            theory.omega_tap_level((0, 8), 3, 4)

    def test_unique_path_links(self):
        assert theory.expected_unique_path_links(5) == 5
