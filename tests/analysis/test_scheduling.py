"""Tests for time-slot scheduling (the TDM alternative to dilation)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis.scheduling import conflict_graph, schedule_slots
from repro.core.conflict import analyze_conflicts
from repro.analysis.worstcase import cube_adversarial_set
from repro.core.conference import Conference
from repro.core.conflict import link_loads
from repro.core.routing import route_conference
from repro.topology.builders import build
from repro.workloads.generators import uniform_partition


def routes_for(net, cs):
    return [route_conference(net, c) for c in cs]


class TestConflictGraph:
    def test_edges_are_link_sharers(self):
        net = build("indirect-binary-cube", 8)
        routes = routes_for(net, [Conference.of(m, i) for i, m in enumerate([(0, 3), (1, 2), (4, 5)])])
        g = conflict_graph(routes)
        assert g.has_edge(0, 1)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(1, 2)
        assert g.edges[0, 1]["link"] in routes[0].links & routes[1].links

    def test_all_nodes_present(self):
        net = build("omega", 8)
        routes = routes_for(net, [Conference.of(m, i) for i, m in enumerate([(0,), (1,)])])
        g = conflict_graph(routes)
        assert set(g.nodes) == {0, 1}


class TestScheduleSlots:
    def test_empty(self):
        res = schedule_slots([])
        assert res.n_slots == 0 and res.slots == {}

    def test_conflict_free_set_needs_one_slot(self):
        net = build("indirect-binary-cube", 16)
        routes = routes_for(net, [Conference.of(m, i) for i, m in enumerate([(0, 1), (4, 5)])])
        res = schedule_slots(routes)
        assert res.n_slots == 1
        assert res.optimal

    def test_adversarial_set_needs_clique_many_slots(self):
        """The worst-case set's conflicts form a clique, so the schedule
        needs exactly the link multiplicity."""
        net = build("indirect-binary-cube", 32)
        routes = routes_for(net, cube_adversarial_set(32))
        res = schedule_slots(routes)
        assert res.clique_bound == 4
        assert res.n_slots >= 4
        assert set(res.slots) == {r.conference.conference_id for r in routes}

    def test_slots_are_internally_conflict_free(self):
        net = build("omega", 32)
        routes = routes_for(net, uniform_partition(32, load=0.9, seed=3))
        res = schedule_slots(routes)
        by_id = {r.conference.conference_id: r for r in routes}
        for slot in range(res.n_slots):
            group = [by_id[c] for c in res.conferences_in_slot(slot)]
            loads = link_loads(group)
            assert not loads or max(loads.values()) == 1

    def test_strategies(self):
        net = build("omega", 16)
        routes = routes_for(net, uniform_partition(16, load=0.9, seed=1))
        a = schedule_slots(routes, strategy="DSATUR")
        b = schedule_slots(routes, strategy="largest_first")
        assert a.n_slots >= a.clique_bound
        assert b.n_slots >= b.clique_bound
        with pytest.raises(ValueError):
            schedule_slots(routes, strategy="rainbow")

    def test_random_sets_schedule_near_clique_bound(self):
        """Measured: greedy colouring stays within one slot of the
        multiplicity bound on random traffic at N=32."""
        net = build("indirect-binary-cube", 32)
        for seed in range(10):
            routes = routes_for(net, uniform_partition(32, load=0.75, seed=seed))
            res = schedule_slots(routes)
            assert res.clique_bound <= res.n_slots <= res.clique_bound + 2


class TestEdgeCases:
    """Edge inputs the TDM capacity model feeds in live operation."""

    def test_empty_routes_with_explicit_strategy(self):
        res = schedule_slots([], strategy="largest_first")
        assert res.n_slots == 0 and res.slots == {}
        assert res.clique_bound == 0
        assert res.strategy == "largest_first"

    def test_unknown_strategy_rejected_even_on_empty_input(self):
        # Strategy validation must not be short-circuited by the
        # empty-routes early return: between sessions the live route
        # set is legitimately empty, and a typo'd strategy should fail
        # loudly there too, not only under load.
        with pytest.raises(ValueError, match="rainbow"):
            schedule_slots([], strategy="rainbow")

    def test_single_conference_graph(self):
        net = build("indirect-binary-cube", 16)
        (route,) = routes_for(net, [Conference.of((0, 5, 9), 7)])
        res = schedule_slots([route])
        assert res.slots == {7: 0}
        assert res.n_slots == 1
        assert res.clique_bound == 1
        assert res.optimal
        assert res.conferences_in_slot(0) == (7,)
        assert res.conferences_in_slot(1) == ()

    def test_single_conference_graph_has_no_edges(self):
        net = build("omega", 16)
        (route,) = routes_for(net, [Conference.of((1, 2, 3), 0)])
        g = conflict_graph([route])
        assert set(g.nodes) == {0}
        assert g.number_of_edges() == 0


class TestSlotCountProperty:
    """Hypothesis: the frame is never shorter than the multiplicity bound."""

    @settings(max_examples=60, deadline=None)
    @given(
        groups=st.lists(
            st.sets(st.integers(min_value=0, max_value=15), min_size=2, max_size=5),
            min_size=1,
            max_size=10,
        ),
        topology=st.sampled_from(["omega", "indirect-binary-cube"]),
        strategy=st.sampled_from(["DSATUR", "largest_first"]),
    )
    def test_slots_at_least_max_link_multiplicity(self, groups, topology, strategy):
        net = build(topology, 16)
        routes = routes_for(
            net, [Conference.of(sorted(g), cid) for cid, g in enumerate(groups)]
        )
        res = schedule_slots(routes, strategy=strategy)
        bound = analyze_conflicts(routes).max_multiplicity
        # A link shared by m conferences forces m distinct slots: no
        # valid colouring can be shorter than the largest multiplicity.
        assert res.n_slots >= bound
        assert res.clique_bound == max(bound, 1)
        # And the schedule is a function of exactly the conference ids.
        assert set(res.slots) == {r.conference.conference_id for r in routes}
