"""The aligned-placement guarantee, per topology — a reconstructed result.

Yang 2001 realizes each conference inside an aligned block and gets a
conflict-free network.  Which of the paper's three topologies actually
support that discipline?  Conflict-freedom of a family is a *pairwise*
property (multiplicity 2 needs two conferences on one link), so
exhausting conference pairs settles it completely:

* **indirect binary cube** — conflict-free for *any* conferences in
  disjoint aligned blocks (routes never leave the block's rows; proved
  via the closed form, checked here).
* **omega** — conflict-free under buddy placement (members are a prefix
  of a minimally-sized block), but NOT for arbitrary subsets of
  disjoint blocks: {0,2} and {4,5} collide.
* **baseline** — loses the guarantee outright: the full blocks {0,1}
  and {2,3} collide.

This explains the prior work's choice of the cube as its substrate.
"""

from itertools import combinations

import pytest

from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.topology.builders import build

N_PORTS = 16


def buddy_placed_conferences(n_ports):
    """Every (members, allocated block) a buddy allocator can produce,
    for block sizes 2..8: members are a prefix of a minimal block."""
    out = []
    for k in (1, 2, 3):
        for base in range(0, n_ports, 1 << k):
            for m in range(max(2, (1 << (k - 1)) + 1), (1 << k) + 1):
                out.append((tuple(range(base, base + m)), (base, base + (1 << k))))
    return out


def block_subset_conferences(n_ports, k=2):
    """Arbitrary >=2-member subsets of each aligned 2**k block."""
    out = []
    for base in range(0, n_ports, 1 << k):
        block = range(base, base + (1 << k))
        for r in range(2, (1 << k) + 1):
            out.extend((tuple(c), (base, base + (1 << k))) for c in combinations(block, r))
    return out


def conflicting_pair(net, confs):
    links = {members: route_conference(net, Conference.of(members)).links for members, _ in confs}
    for (c1, b1), (c2, b2) in combinations(confs, 2):
        if not (b1[1] <= b2[0] or b2[1] <= b1[0]):
            continue  # allocated blocks overlap: not a legal placement pair
        if links[c1] & links[c2]:
            return c1, c2
    return None


class TestBuddyPlacement:
    @pytest.mark.parametrize("name", ["indirect-binary-cube", "omega"])
    def test_cube_and_omega_are_conflict_free(self, name):
        net = build(name, N_PORTS)
        assert conflicting_pair(net, buddy_placed_conferences(N_PORTS)) is None

    def test_baseline_is_not(self):
        net = build("baseline", N_PORTS)
        pair = conflicting_pair(net, buddy_placed_conferences(N_PORTS))
        assert pair is not None
        # The canonical counterexample: adjacent size-2 blocks.
        r1 = route_conference(net, Conference.of((0, 1))).links
        r2 = route_conference(net, Conference.of((2, 3))).links
        assert r1 & r2


class TestArbitraryBlockSubsets:
    def test_cube_still_conflict_free(self):
        """The cube's guarantee is the strongest: any subsets of
        disjoint blocks, not just buddy prefixes."""
        net = build("indirect-binary-cube", N_PORTS)
        assert conflicting_pair(net, block_subset_conferences(N_PORTS)) is None

    def test_omega_is_not(self):
        net = build("omega", N_PORTS)
        pair = conflicting_pair(net, block_subset_conferences(N_PORTS))
        assert pair is not None
        # The canonical counterexample found by the exhaustive sweep.
        r1 = route_conference(net, Conference.of((0, 2))).links
        r2 = route_conference(net, Conference.of((4, 5))).links
        assert r1 & r2
