"""Property tests for the protection subsystem's two core guarantees.

1. **Bit-identity**: for any conference and any base fault set, a plan
   the store cut for point ``p`` answers exactly what the reactive
   router would compute under ``base ∪ {p}`` — same route cell for cell,
   or the same unroutable verdict.
2. **No stale entries**: however a controller population churns (joins,
   leaves, faults, repairs), the plan store never holds a plan for a
   conference that is not live, and every stored plan matches its live
   conference's current membership.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import Conference
from repro.core.healing import SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import RoutingPolicy, UnroutableError, route_conference
from repro.protect.plans import BackupPlanStore
from repro.sim.engine import EventLoop
from repro.sim.faults import fault_universe
from repro.topology.builders import build

pytestmark = pytest.mark.tier1

N_PORTS = 16
NET = build("extra-stage-cube", N_PORTS)
POLICY = RoutingPolicy()
UNIVERSE = fault_universe(NET)


def router(conference, faults=frozenset()):
    return route_conference(NET, conference, POLICY, faults=faults)


members_strategy = st.sets(
    st.integers(min_value=0, max_value=N_PORTS - 1), min_size=2, max_size=6
).map(lambda s: tuple(sorted(s)))

base_faults_strategy = st.sets(
    st.sampled_from(UNIVERSE), min_size=0, max_size=3
).map(frozenset)


class TestBitIdentity:
    @settings(max_examples=60, deadline=None)
    @given(members=members_strategy, base=base_faults_strategy)
    def test_stored_plan_equals_reactive_reroute(self, members, base):
        conf = Conference.of(members, 1)
        try:
            live = router(conf, base)
        except UnroutableError:
            return  # never admitted — nothing to protect
        store = BackupPlanStore(NET, policy=POLICY, protection=len(live.links))
        store.protect(conf, live, base, router)
        for point in sorted(live.links - base):
            faults = base | {point}
            status, payload = store.lookup(conf, point, faults)
            assert status == "hit"
            try:
                expected = router(conf, faults)
            except UnroutableError:
                assert isinstance(payload, UnroutableError), (
                    f"plan for {point} routed but reactive says unroutable"
                )
            else:
                assert payload == expected, f"plan for {point} diverged"

    @settings(max_examples=40, deadline=None)
    @given(
        members=members_strategy,
        base=base_faults_strategy,
        extra=st.sampled_from(UNIVERSE),
    )
    def test_any_unanticipated_fault_is_never_a_hit(self, members, base, extra):
        conf = Conference.of(members, 1)
        try:
            live = router(conf, base)
        except UnroutableError:
            return
        store = BackupPlanStore(NET, policy=POLICY, protection=len(live.links))
        store.protect(conf, live, base, router)
        for point in sorted(live.links - base):
            faults = base | {point, extra}
            if faults == base | {point}:
                continue  # extra adds nothing: the plan legitimately covers
            status, payload = store.lookup(conf, point, faults)
            assert status == "stale" and payload is None


class TestNoStaleEntries:
    @settings(max_examples=25, deadline=None)
    @given(
        steps=st.lists(
            st.tuples(st.sampled_from(["join", "leave", "fault", "repair"]),
                      st.integers(min_value=0, max_value=7)),
            min_size=1,
            max_size=24,
        ),
        protection=st.integers(min_value=1, max_value=3),
    )
    def test_store_tracks_the_live_population_exactly(self, steps, protection):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        healing = SelfHealingController(network, rng=0, protection=protection)
        store = healing.plan_store
        loop = EventLoop()
        pool = [(0, 1), (2, 3), (4, 5, 6), (7, 8), (9, 10, 11), (12, 13), (14, 15), (1, 2)]
        toggled: set = set()
        for op, k in steps:
            if op == "join":
                cid = k
                if cid not in healing.live_conferences:
                    try:
                        healing.try_join(Conference.of(pool[k], cid))
                    except Exception:
                        pass  # port clash or faulted-out: nothing admitted
            elif op == "leave":
                if k in healing.live_conferences:
                    healing.leave(k)
            elif op == "fault":
                point = UNIVERSE[k * 5 % len(UNIVERSE)]
                if point not in toggled:
                    healing.apply_fault(loop, point)
                    toggled.add(point)
            else:
                point = UNIVERSE[k * 5 % len(UNIVERSE)]
                if point in toggled:
                    healing.apply_repair(loop, point)
                    toggled.discard(point)
            # The invariant, after every step: plans exist only for live
            # conferences, and always for the *current* membership.
            live = healing.live_conferences
            planned = {cid for cid in range(16) if store.plans_of(cid)}
            assert planned <= set(live), f"stale plans for {planned - set(live)}"
            for cid in planned:
                members = healing.route_of(cid).conference.members
                for plan in store.plans_of(cid).values():
                    assert plan.members == members
                    assert plan.base_faults == healing.current_faults

    def test_leave_then_rejoin_uses_fresh_plans(self):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        healing = SelfHealingController(network, rng=0, protection=64)
        healing.try_join(Conference.of([0, 1], 1))
        first = set(healing.plan_store.plans_of(1))
        healing.leave(1)
        assert healing.plan_store.plans_of(1) == {}
        healing.try_join(Conference.of([0, 1, 2], 1))
        plans = healing.plan_store.plans_of(1)
        assert plans and all(p.members == (0, 1, 2) for p in plans.values())
        assert set(plans) == healing.route_of(1).links
        assert first is not None  # the old keys are irrelevant, only freshness
