"""Unit tests for the backup-plan store (lifecycle, stats, footprint)."""

import pytest

from repro.core.conference import Conference
from repro.core.healing import SelfHealingController
from repro.core.network import ConferenceNetwork
from repro.core.routing import RoutingPolicy, UnroutableError, route_conference
from repro.protect.plans import BackupPlanStore, PlanStats
from repro.sim.engine import EventLoop
from repro.topology.builders import build

pytestmark = pytest.mark.tier1

N_PORTS = 16


def store(topology="extra-stage-cube", protection=2, tracer=None):
    net = build(topology, N_PORTS)
    policy = RoutingPolicy()
    s = BackupPlanStore(net, policy=policy, protection=protection, tracer=tracer)

    def router(conference, faults=frozenset()):
        return route_conference(net, conference, policy, faults=faults)

    return s, router


class TestPlanStats:
    def test_lookup_classification_and_hit_rate(self):
        stats = PlanStats(hits=3, misses=1, stale=1)
        assert stats.lookups == 5
        assert stats.hit_rate == 0.6

    def test_unused_store_has_zero_hit_rate(self):
        assert PlanStats().hit_rate == 0.0

    def test_merge_and_merged(self):
        a = PlanStats(computed=2, unroutable=1, hits=1)
        b = PlanStats(computed=3, misses=2, invalidated=4)
        both = a.merge(b)
        assert (both.computed, both.unroutable, both.hits) == (5, 1, 1)
        assert (both.misses, both.invalidated) == (2, 4)
        total = PlanStats.merged([a, b, PlanStats(stale=7)])
        assert total.stale == 7 and total.computed == 5

    def test_as_dict_includes_derived_fields(self):
        payload = PlanStats(hits=1, misses=1).as_dict()
        assert payload["lookups"] == 2
        assert payload["hit_rate"] == 0.5


class TestStoreLifecycle:
    def test_protection_must_be_nonnegative(self):
        net = build("extra-stage-cube", N_PORTS)
        with pytest.raises(ValueError, match="protection"):
            BackupPlanStore(net, protection=-1)

    def test_protect_zero_stores_nothing(self):
        s, router = store(protection=0)
        conf = Conference.of([0, 1, 2], 7)
        route = router(conf)
        assert s.protect(conf, route, frozenset(), router) == 0
        assert len(s) == 0
        assert s.lookup(conf, next(iter(sorted(route.links))), frozenset({(1, 0)}))[0] == "miss"

    def test_protect_plans_the_budgeted_links(self):
        s, router = store(protection=2)
        conf = Conference.of([0, 1, 2, 3], 1)
        route = router(conf)
        stored = s.protect(conf, route, frozenset(), router)
        assert stored == min(2, len(route.links))
        assert s.protected_points(1) <= route.links
        assert s.stats.computed == stored

    def test_budget_larger_than_route_plans_every_link(self):
        s, router = store(protection=10_000)
        conf = Conference.of([0, 5], 2)
        route = router(conf)
        assert s.protect(conf, route, frozenset(), router) == len(route.links)
        assert s.protected_points(2) == route.links

    def test_load_ranking_prefers_most_loaded_links(self):
        s, router = store(protection=1)
        conf = Conference.of([0, 1], 3)
        route = router(conf)
        links = sorted(route.links)
        hot = links[-1]  # pretend the lexicographically-last link is hottest
        s.protect(conf, route, frozenset(), router, load_of=lambda p: 9 if p == hot else 0)
        assert s.protected_points(3) == frozenset({hot})

    def test_hit_returns_route_bit_identical_to_reactive(self):
        s, router = store(protection=64)
        conf = Conference.of([0, 1, 2], 4)
        route = router(conf)
        s.protect(conf, route, frozenset(), router)
        for point in sorted(route.links):
            faults = frozenset({point})
            status, payload = s.lookup(conf, point, faults)
            assert status == "hit"
            try:
                expected = router(conf, faults)
            except UnroutableError:
                assert isinstance(payload, UnroutableError)
            else:
                assert payload == expected

    def test_negative_plan_counts_and_returns_the_error(self):
        # On a plain banyan (no relay slack, dilation 1) every route link
        # is a single point of failure: all plans must be negative.
        s, router = store(topology="indirect-binary-cube", protection=64)
        conf = Conference.of([0, 1, 2], 5)
        route = router(conf)
        s.protect(conf, route, frozenset(), router)
        foot = s.footprint()
        assert foot["plans"] == foot["negative_plans"] > 0
        assert foot["route_cells"] == 0
        point = sorted(route.links)[0]
        status, payload = s.lookup(conf, point, frozenset({point}))
        assert status == "hit" and isinstance(payload, UnroutableError)

    def test_overlapping_fault_reports_stale(self):
        s, router = store(protection=64)
        conf = Conference.of([0, 1], 6)
        route = router(conf)
        s.protect(conf, route, frozenset(), router)
        point = sorted(route.links)[0]
        extra = (route.n_stages, N_PORTS - 1)
        status, payload = s.lookup(conf, point, frozenset({point, extra}))
        assert status == "stale" and payload is None
        assert s.stats.stale == 1

    def test_membership_churn_reports_stale(self):
        s, router = store(protection=64)
        conf = Conference.of([0, 1], 8)
        route = router(conf)
        s.protect(conf, route, frozenset(), router)
        point = sorted(route.links)[0]
        grown = Conference.of([0, 1, 2], 8)
        status, _ = s.lookup(grown, point, frozenset({point}))
        assert status == "stale"

    def test_unknown_point_or_conference_misses(self):
        s, router = store(protection=1)
        conf = Conference.of([0, 1], 9)
        s.protect(conf, router(conf), frozenset(), router)
        stranger = Conference.of([4, 5], 99)
        assert s.lookup(stranger, (1, 0), frozenset({(1, 0)}))[0] == "miss"

    def test_reprotect_replaces_wholesale(self):
        s, router = store(protection=64)
        conf = Conference.of([0, 1, 2], 10)
        route = router(conf)
        s.protect(conf, route, frozenset(), router)
        # Re-plan under a fault on a route link: the new plans' base must
        # be the new fault set, and old per-point plans must be gone.
        dead = sorted(route.links)[0]
        detour = router(conf, frozenset({dead}))
        s.protect(conf, detour, frozenset({dead}), router)
        plans = s.plans_of(10)
        assert set(plans) == detour.links
        assert all(p.base_faults == frozenset({dead}) for p in plans.values())

    def test_invalidate_removes_and_counts(self):
        s, router = store(protection=64)
        conf = Conference.of([0, 1, 2], 11)
        s.protect(conf, router(conf), frozenset(), router)
        n = len(s)
        assert n > 0
        assert s.invalidate(11) == n
        assert len(s) == 0 and s.plans_of(11) == {}
        assert s.stats.invalidated == n
        assert s.invalidate(11) == 0  # unknown id is a no-op

    def test_footprint_grows_with_protection(self):
        cells = {}
        for level in (0, 1, 2, 4):
            s, router = store(protection=level)
            for i, members in enumerate([(0, 1), (2, 3, 4), (5, 6)]):
                conf = Conference.of(members, i)
                s.protect(conf, router(conf), frozenset(), router)
            foot = s.footprint()
            assert foot["protection"] == level
            assert foot["plans"] <= 3 * level
            cells[level] = foot["route_cells"]
        assert cells[0] == 0
        assert cells[0] <= cells[1] <= cells[2] <= cells[4]

    def test_lookup_events_reach_the_tracer(self):
        events = []

        class Spy:
            def event(self, name, **fields):
                events.append(name)

        s, router = store(protection=64, tracer=Spy())
        conf = Conference.of([0, 1], 12)
        route = router(conf)
        s.protect(conf, route, frozenset(), router)
        point = sorted(route.links)[0]
        s.lookup(conf, point, frozenset({point}))
        s.lookup(conf, point, frozenset({point, (1, 15)}))
        s.lookup(conf, (1, 15), frozenset({(1, 15)}))
        assert events == ["plan.hit", "plan.stale", "plan.miss"]


class TestControllerIntegration:
    def make(self, protection):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        return SelfHealingController(network, rng=0, protection=protection)

    def test_protection_validated_and_exposed(self):
        with pytest.raises(ValueError, match="protection"):
            self.make(-1)
        healing = self.make(3)
        assert healing.protection == 3
        assert healing.plan_store is not None
        assert self.make(0).plan_store is None

    def test_admission_plans_and_leave_invalidates(self):
        healing = self.make(2)
        healing.try_join(Conference.of([0, 1, 2], 1))
        assert len(healing.plan_store.plans_of(1)) > 0
        healing.leave(1)
        assert healing.plan_store.plans_of(1) == {}
        assert len(healing.plan_store) == 0

    def test_protected_fault_is_a_plan_hit_with_zero_ticks(self):
        healing = self.make(64)  # protect every link
        route = healing.try_join(Conference.of([0, 1, 2], 1))
        loop = EventLoop()
        healing.apply_fault(loop, sorted(route.links)[0])
        assert healing.stats.plan_hits == 1
        assert healing.stats.recovery_samples == (0.0,)

    def test_unprotected_fault_is_reactive_with_one_tick(self):
        healing = self.make(0)
        route = healing.try_join(Conference.of([0, 1, 2], 1))
        loop = EventLoop()
        healing.apply_fault(loop, sorted(route.links)[0])
        assert healing.stats.plan_hits == 0
        assert healing.stats.recovery_samples == (1.0,)

    def test_fastpath_decisions_match_reactive(self):
        # Same fault schedule against F=all and F=0 controllers: every
        # observable decision (survivors, routes, drops) must agree.
        fast, slow = self.make(64), self.make(0)
        for ctl in (fast, slow):
            for i, members in enumerate([(0, 1), (2, 3, 4, 5), (8, 9)]):
                ctl.try_join(Conference.of(members, i))
        route = fast.route_of(1)
        loop = EventLoop()
        points = sorted(route.links)[:2] + [(1, 11)]
        for point in points:
            fast.apply_fault(loop, point)
            slow.apply_fault(loop, point)
            assert fast.live_conferences == slow.live_conferences
            for cid in sorted(fast.live_conferences):
                assert fast.route_of(cid) == slow.route_of(cid)
        for point in points:
            fast.apply_repair(loop, point)
            slow.apply_repair(loop, point)
            assert fast.live_conferences == slow.live_conferences
            for cid in sorted(fast.live_conferences):
                assert fast.route_of(cid) == slow.route_of(cid)
        assert fast.stats.plan_hits > 0

    def test_external_store_binding_is_validated(self):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS)
        other = build("extra-stage-cube", 32)
        foreign = BackupPlanStore(other, protection=1)
        with pytest.raises(ValueError):
            SelfHealingController(network, rng=0, plan_store=foreign)
        own = BackupPlanStore(network.topology, policy=network.policy, protection=1)
        healing = SelfHealingController(network, rng=0, plan_store=own)
        assert healing.plan_store is own
        assert healing.protection == 1
