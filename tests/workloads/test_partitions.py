"""Tests for the exact enumeration machinery."""

import pytest

from repro.core.conference import ConferenceSet
from repro.workloads.partitions import (
    conference_sets,
    count_partial_partitions,
    pair_families,
    partial_partitions,
)


class TestPartialPartitions:
    def test_small_case_by_hand(self):
        fams = list(partial_partitions(range(3)))
        as_sets = {tuple(sorted(map(tuple, f))) for f in fams}
        # On 3 items with blocks >= 2: empty family, three pairs, one triple.
        assert as_sets == {
            (),
            ((0, 1),),
            ((0, 2),),
            ((1, 2),),
            ((0, 1, 2),),
        }

    def test_no_duplicates_and_count_matches_formula(self):
        for n in (3, 4, 5, 6):
            fams = [tuple(sorted(map(tuple, f))) for f in partial_partitions(range(n))]
            assert len(fams) == len(set(fams))
            assert len(fams) == count_partial_partitions(n)

    def test_blocks_are_disjoint(self):
        for fam in partial_partitions(range(6)):
            flat = [x for block in fam for x in block]
            assert len(flat) == len(set(flat))

    def test_min_block_respected(self):
        for fam in partial_partitions(range(5), min_block=3):
            assert all(len(b) >= 3 for b in fam)

    def test_max_blocks(self):
        assert all(len(f) <= 1 for f in partial_partitions(range(5), max_blocks=1))

    def test_min_block_validation(self):
        with pytest.raises(ValueError):
            list(partial_partitions(range(3), min_block=0))

    def test_known_count_n8(self):
        # Matches the Bell-number identity for blocks >= 2 families.
        assert count_partial_partitions(8) == 4140


class TestConferenceSets:
    def test_yields_valid_sets(self):
        sets = list(conference_sets(4))
        assert all(isinstance(cs, ConferenceSet) for cs in sets)
        # 15 families on 4 items minus the empty family (min_conferences=1).
        assert len(sets) == 14

    def test_min_conferences_filter(self):
        assert all(len(cs) >= 2 for cs in conference_sets(4, min_conferences=2))


class TestPairFamilies:
    def test_enumerates_partial_matchings(self):
        fams = {tuple(sorted(f)) for f in pair_families(range(4))}
        # On 4 ports: empty, 6 single pairs, 3 perfect matchings.
        assert len(fams) == 10

    def test_no_duplicates(self):
        fams = [tuple(sorted(f)) for f in pair_families(range(6))]
        assert len(fams) == len(set(fams))

    def test_pairs_disjoint(self):
        for fam in pair_families(range(6)):
            flat = [x for pair in fam for x in pair]
            assert len(flat) == len(set(flat))
