"""Tests for random conference-set generators."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.conference import ConferenceSet
from repro.workloads.generators import (
    aligned_sets,
    clustered,
    draw_sizes,
    interleaved,
    sample_stream,
    uniform_partition,
)
from repro.util.rng import ensure_rng


class TestDrawSizes:
    def test_respects_budget_and_minimum(self):
        rng = ensure_rng(0)
        sizes = draw_sizes(rng, 40, mean_size=4.0)
        assert sum(sizes) <= 40
        assert all(s >= 2 for s in sizes)

    def test_max_size_cap(self):
        rng = ensure_rng(0)
        assert all(s <= 3 for s in draw_sizes(rng, 60, 4.0, max_size=3))

    def test_mean_below_min_rejected(self):
        with pytest.raises(ValueError):
            draw_sizes(ensure_rng(0), 10, mean_size=1.0, min_size=2)


class TestUniformPartition:
    @settings(max_examples=25, deadline=None)
    @given(seed=st.integers(0, 10_000), load=st.floats(0.1, 1.0))
    def test_valid_and_load_respected(self, seed, load):
        cs = uniform_partition(64, load=load, seed=seed)
        assert isinstance(cs, ConferenceSet)
        assert len(cs.occupied_ports) <= int(round(load * 64))

    def test_deterministic(self):
        a = uniform_partition(64, seed=5)
        b = uniform_partition(64, seed=5)
        assert [c.members for c in a] == [c.members for c in b]

    def test_load_validation(self):
        with pytest.raises(ValueError):
            uniform_partition(64, load=1.5)


class TestClustered:
    def test_valid_and_deterministic(self):
        a = clustered(64, seed=9)
        b = clustered(64, seed=9)
        assert [c.members for c in a] == [c.members for c in b]
        assert a.load > 0

    def test_members_are_local(self):
        cs = clustered(256, load=0.3, mean_size=4.0, spread=8, seed=2)
        for conf in cs:
            assert max(conf.members) - min(conf.members) <= 4 * 8

    def test_spread_validation(self):
        with pytest.raises(ValueError):
            clustered(64, spread=0)


class TestInterleaved:
    def test_shape(self):
        cs = interleaved(64, seed=0)
        assert all(c.size == 2 for c in cs)
        assert len(cs) == 7  # 2**min(3, 3) - 1

    def test_straddles_blocks(self):
        cs = interleaved(64, seed=1)
        n = 6
        t = 3
        for conf in cs:
            lo, hi = conf.members
            assert hi == lo << t

    def test_count_validation(self):
        with pytest.raises(ValueError):
            interleaved(64, n_conferences=100)
        assert len(interleaved(64, n_conferences=3, seed=0)) == 3


class TestAlignedSets:
    def test_conferences_fit_blocks(self):
        cs = aligned_sets(64, seed=4)
        for conf in cs:
            k = conf.enclosing_block_exponent(64)
            assert (1 << k) >= conf.size

    def test_never_raises_even_at_full_load(self):
        cs = aligned_sets(16, load=1.0, mean_size=5.0, seed=8)
        assert isinstance(cs, ConferenceSet)


class TestSampleStream:
    def test_yields_requested_count(self):
        sets = list(sample_stream("uniform", 32, 5, seed=0))
        assert len(sets) == 5

    def test_deterministic_stream(self):
        a = [tuple(c.members for c in cs) for cs in sample_stream("uniform", 32, 3, seed=1)]
        b = [tuple(c.members for c in cs) for cs in sample_stream("uniform", 32, 3, seed=1)]
        assert a == b

    def test_unknown_generator(self):
        with pytest.raises(KeyError, match="uniform"):
            list(sample_stream("zipf", 32, 1))
