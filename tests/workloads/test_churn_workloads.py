"""Tests for churn timeline generators and the service replay driver."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.network import ConferenceNetwork
from repro.serve.service import FabricService
from repro.workloads.churn import (
    ChurnEvent,
    diurnal_load,
    flash_crowd,
    lurker_joins,
    replay_churn,
    zipf_sizes,
)

GENERATORS = [flash_crowd, diurnal_load, lurker_joins]


class TestChurnEvent:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ValueError, match="kind"):
            ChurnEvent(0, "merge", 0, (1, 2))

    def test_open_needs_two_ports(self):
        with pytest.raises(ValueError, match="at least 2"):
            ChurnEvent(0, "open", 0, (1,))

    def test_join_and_leave_need_ports(self):
        for kind in ("join", "leave"):
            with pytest.raises(ValueError, match="at least one"):
                ChurnEvent(1, kind, 0, ())

    def test_negative_tick_and_session_rejected(self):
        with pytest.raises(ValueError, match="tick"):
            ChurnEvent(-1, "close", 0)
        with pytest.raises(ValueError, match="session"):
            ChurnEvent(0, "close", -1)

    def test_as_dict(self):
        event = ChurnEvent(3, "join", 1, (7,))
        assert event.as_dict() == {
            "tick": 3,
            "kind": "join",
            "session": 1,
            "ports": [7],
        }


def _check_timeline(events):
    """A valid timeline: opens precede dependent events, live
    conferences stay port-disjoint, leaves remove actual members."""
    members: dict[int, set[int]] = {}
    for event in sorted(events, key=lambda e: e.tick):
        if event.kind == "open":
            assert event.session not in members
            live = set().union(*members.values()) if members else set()
            assert not live & set(event.ports), "open reuses a live port"
            members[event.session] = set(event.ports)
        elif event.kind == "join":
            assert event.session in members, "join before open"
            live = set().union(*members.values())
            assert not live & set(event.ports), "join reuses a live port"
            members[event.session] |= set(event.ports)
        elif event.kind == "leave":
            assert set(event.ports) <= members[event.session]
            members[event.session] -= set(event.ports)
            assert len(members[event.session]) >= 2
        else:
            members.pop(event.session)
    return members


class TestGenerators:
    @pytest.mark.parametrize("generator", GENERATORS)
    def test_timeline_is_valid_by_construction(self, generator):
        _check_timeline(generator(32, seed=3))

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_deterministic_for_a_fixed_seed(self, generator):
        assert generator(32, seed=11) == generator(32, seed=11)

    def test_flash_crowd_bursts_then_drains(self):
        events = flash_crowd(32, crowd=8, seed=0)
        joins = [e for e in events if e.kind == "join"]
        leaves = [e for e in events if e.kind == "leave"]
        assert len(joins) == 8
        assert len(leaves) == 8  # the crowd fully drains
        assert min(e.tick for e in leaves) > max(e.tick for e in joins)
        venue = joins[0].session
        assert all(e.session == venue for e in joins + leaves)

    def test_diurnal_load_has_both_joins_and_leaves(self):
        kinds = {e.kind for e in diurnal_load(32, seed=7)}
        assert {"open", "join", "leave"} <= kinds

    def test_lurkers_accrete_one_at_a_time(self):
        events = lurker_joins(32, core_size=4, lurkers=6, gap=2, seed=1)
        joins = [e for e in events if e.kind == "join"]
        assert len(joins) == 6
        assert all(len(e.ports) == 1 for e in joins)
        ticks = [e.tick for e in joins]
        assert ticks == sorted(ticks)
        assert all(b - a == 2 for a, b in zip(ticks, ticks[1:]))

    @settings(max_examples=30, deadline=None)
    @given(count=st.integers(0, 64), seed=st.integers(0, 1000))
    def test_zipf_sizes_stay_in_range(self, count, seed):
        sizes = zipf_sizes(count, min_size=2, max_size=8, seed=seed)
        assert len(sizes) == count
        assert all(2 <= s <= 8 for s in sizes)

    def test_zipf_is_heavy_tailed(self):
        sizes = zipf_sizes(500, alpha=1.8, min_size=2, max_size=32, seed=0)
        assert sizes.count(2) == max(map(sizes.count, set(sizes)))  # mode: the two-party call
        assert max(sizes) > 8  # but the tail shows up

    def test_zipf_validation(self):
        with pytest.raises(ValueError, match="alpha"):
            zipf_sizes(5, alpha=1.0)
        with pytest.raises(ValueError, match="min_size"):
            zipf_sizes(5, min_size=1)
        with pytest.raises(ValueError, match="max_size"):
            zipf_sizes(5, min_size=4, max_size=3)

    def test_generator_validation(self):
        with pytest.raises(ValueError, match="burst_start"):
            flash_crowd(32, burst_start=0)
        with pytest.raises(ValueError, match="period"):
            diurnal_load(32, period=1)
        with pytest.raises(ValueError, match="gap"):
            lurker_joins(32, gap=0)


class TestReplay:
    def _service(self, n_ports=32):
        net = ConferenceNetwork.build("indirect-binary-cube", n_ports, dilation=n_ports)
        return FabricService(net, rng=0)

    @pytest.mark.parametrize("generator", GENERATORS)
    def test_every_event_completes_and_applies(self, generator):
        events = generator(32, seed=5)
        records = replay_churn(self._service(), events)
        assert len(records) == len(events)
        assert [r["event"] for r in records] == list(range(len(events)))
        for record in records:
            assert record["ok"], record
            assert record["status"] in ("admitted", "applied", "closed")

    def test_membership_records_carry_the_disruption_detail(self):
        events = lurker_joins(32, lurkers=4, seed=2)
        records = replay_churn(self._service(), events)
        joins = [r for r in records if r["kind"] == "join"]
        assert joins
        for record in joins:
            detail = record["detail"]
            assert detail["mode"] in ("incremental", "full-reroute")
            assert isinstance(detail["hitless"], bool)
            assert detail["links_reconfigured"] >= 0

    def test_dependent_event_before_open_rejected(self):
        events = [ChurnEvent(0, "join", 7, (1,))]
        with pytest.raises(ValueError, match="before its open"):
            replay_churn(self._service(), events)

    def test_empty_timeline(self):
        assert replay_churn(self._service(), []) == []
