"""The golden-corpus fixture.

``golden(name, computed)`` compares ``computed`` (anything JSON-encodable)
against ``tests/golden/data/<name>.json``.  On drift it fails loudly
with a unified diff of the two renderings.  Run

    pytest tests/golden --update-golden

to rewrite the corpus from current behavior — the resulting git diff is
then the review artifact for an intentional behavior change.

Values are normalized through a JSON round-trip before comparison, so
tuples/lists and int/float distinctions that JSON cannot represent are
not spurious drift.
"""

import difflib
import json
from pathlib import Path

import pytest

DATA_DIR = Path(__file__).parent / "data"


def _render(computed) -> str:
    normalized = json.loads(json.dumps(computed, sort_keys=True))
    return json.dumps(normalized, indent=2, sort_keys=True) + "\n"


@pytest.fixture
def golden(request):
    update = request.config.getoption("--update-golden")

    def check(name: str, computed) -> None:
        path = DATA_DIR / f"{name}.json"
        rendered = _render(computed)
        if update:
            DATA_DIR.mkdir(exist_ok=True)
            path.write_text(rendered)
            return
        if not path.exists():
            pytest.fail(
                f"missing golden file {path} — generate the corpus with "
                "`pytest tests/golden --update-golden`"
            )
        expected = path.read_text()
        if rendered == expected:
            return
        diff = "\n".join(
            difflib.unified_diff(
                expected.splitlines(),
                rendered.splitlines(),
                fromfile=f"{path} (golden)",
                tofile=f"{name} (computed)",
                lineterm="",
            )
        )
        pytest.fail(
            f"golden drift in {name!r} — if intentional, rerun with "
            f"--update-golden and commit the diff:\n{diff}"
        )

    return check
