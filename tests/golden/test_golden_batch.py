"""Golden snapshots of the columnar routing core.

The batch kernel's contract is byte-identity with the sequential path,
so its golden records deliberately keep *insertion order*: levels and
taps serialize in dict order (unlike the report serializer, which
sorts), and ``links`` in frozenset iteration order.  A kernel change
that reorders construction — even to an "equal" result — shows up here
as a reviewable diff.
"""

import pytest

from repro.core.batch import analyze_conflicts_columnar, occupancy_words, route_batch, stage_occupancy
from repro.core.conference import Conference
from repro.topology.builders import build
from repro.util.rng import ensure_rng

pytestmark = pytest.mark.tier1

N_PORTS = 16


def batch_for(seed, size=12):
    rng = ensure_rng(seed)
    batch = []
    for cid in range(size):
        k = int(rng.integers(2, 7))
        members = sorted(int(m) for m in rng.choice(N_PORTS, size=k, replace=False))
        batch.append(Conference.of(members, cid))
    return batch


def outcome_to_record(outcome):
    """Order-preserving JSON view (repr-faithful, unlike route_to_dict)."""
    if not outcome.ok:
        return {
            "conference": list(outcome.conference.members),
            "error": type(outcome.error).__name__,
            "args": list(outcome.error.args),
        }
    route = outcome.route
    return {
        "conference": list(route.conference.members),
        "taps": [[port, level] for port, level in route.taps.items()],
        "levels": [[[row, mask] for row, mask in rows.items()] for rows in route.levels],
        "links": [list(link) for link in route.links],
    }


class TestRouteBatchGolden:
    @pytest.mark.parametrize("topology", ["omega", "indirect-binary-cube"])
    def test_batch_records(self, golden, topology):
        net = build(topology, N_PORTS)
        outcomes = route_batch(net, batch_for(17))
        golden(
            f"route_batch_{topology}16",
            [outcome_to_record(o) for o in outcomes],
        )

    def test_batch_under_faults(self, golden):
        net = build("indirect-binary-cube", N_PORTS)
        faults = frozenset({(1, 0), (2, 5), (3, 11)})
        outcomes = route_batch(net, batch_for(23), faults=faults)
        golden(
            "route_batch_cube16_faults",
            [outcome_to_record(o) for o in outcomes],
        )

    def test_conflict_accounting(self, golden):
        net = build("indirect-binary-cube", N_PORTS)
        routes = [o.unwrap() for o in route_batch(net, batch_for(29))]
        loads = stage_occupancy(routes, net.n_stages, net.n_ports)
        report = analyze_conflicts_columnar(routes, net.n_stages, net.n_ports)
        golden(
            "route_batch_conflicts_cube16",
            {
                "occupancy": loads.tolist(),
                "occupancy_words": list(occupancy_words(loads)),
                "max_multiplicity": report.max_multiplicity,
                "worst_link": list(report.worst_link),
                "stage_profile": list(report.stage_profile),
                "load_histogram": [list(p) for p in report.load_histogram],
                "total_links_used": report.total_links_used,
            },
        )
