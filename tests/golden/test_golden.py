"""Golden regression corpus for the headline experiments.

Each test recomputes a small but representative slice of an experiment
family and compares the *full* record structure — not a summary
statistic — against a committed JSON snapshot.  Any change to routing,
seeding, workload generation or reduction shows up as a reviewable
unified diff instead of a silent drift in benchmark numbers.

The slices deliberately run through the parallel engine's serial path,
which the differential suite (``tests/parallel``) proves identical to
every pooled configuration — so one corpus covers both engines.
"""

import pytest

from repro.parallel.experiments import (
    random_load_arm,
    randomized_search_parallel,
    search_trials,
)
from repro.sim.traffic import TrafficConfig

pytestmark = [pytest.mark.tier1, pytest.mark.parallel]

N_PORTS = 16


class TestWorstcaseSearchGolden:
    def test_search_records(self, golden):
        records = search_trials(
            "indirect-binary-cube", N_PORTS, trials=20, pool_size=8, seed=11
        )
        golden("search_records_cube16", records)

    def test_search_result(self, golden):
        best = randomized_search_parallel(
            "indirect-binary-cube", N_PORTS, trials=20, pool_size=8, seed=11
        )
        golden(
            "search_result_cube16",
            {
                "multiplicity": best.multiplicity,
                "link": best.link,
                "explored": best.explored,
                "exact": best.exact,
                "witness": [list(c.members) for c in best.witness.conferences],
            },
        )


class TestRandomLoadGolden:
    @pytest.mark.parametrize("topology", ["indirect-binary-cube", "omega"])
    def test_f1_arm(self, golden, topology):
        arm = random_load_arm(topology, N_PORTS, trials=12, seed=123)
        golden(f"f1_random_load_{topology}16", arm)

    def test_f1_clustered_arm(self, golden):
        arm = random_load_arm(
            "indirect-binary-cube",
            N_PORTS,
            workload="clustered",
            trials=12,
            seed=321,
            load=0.75,
        )
        golden("f1_clustered_cube16", arm)


class TestTrafficGolden:
    def test_f3_small_sweep(self, golden):
        from repro.parallel.experiments import traffic_arm

        config = TrafficConfig(arrival_rate=1.0, mean_holding=8.0, mean_size=3.0, max_size=5)
        arms = [
            {"topology": topology, "dilation": dilation}
            for topology in ("indirect-binary-cube", "extra-stage-cube")
            for dilation in (1, 2)
        ]
        rows = [
            traffic_arm(
                arm,
                params={
                    "n_ports": N_PORTS,
                    "config": config,
                    "duration": 120.0,
                    "seed": 5,
                },
            )
            for arm in arms
        ]
        golden("f3_traffic_sweep16", rows)
