#!/usr/bin/env python
"""Fail when the public API surface drifts from its reviewed records.

Checks, in order:

1. ``repro.api.__all__`` matches ``tests/api/public_api_manifest.txt``
   exactly (sorted, no duplicates, every name importable).
2. Every surface name resolves identically through ``repro`` and
   ``repro.api`` (the facade really is the route).
3. ``docs/api.md`` mentions every surface name in backticks.

Run from the repository root::

    PYTHONPATH=src python tools/check_public_api.py

CI's ``public-api`` job runs this plus ``tests/api``; together they make
surface changes fail loudly unless the manifest and docs move in the
same commit.
"""

from __future__ import annotations

import sys
from pathlib import Path

REPO = Path(__file__).resolve().parents[1]
MANIFEST = REPO / "tests" / "api" / "public_api_manifest.txt"
DOCS = REPO / "docs" / "api.md"


def main() -> int:
    sys.path.insert(0, str(REPO / "src"))
    import repro
    from repro import api

    failures: list[str] = []

    recorded = MANIFEST.read_text().split()
    current = sorted(api.__all__)
    if len(api.__all__) != len(set(api.__all__)):
        failures.append("repro.api.__all__ contains duplicates")
    if current != recorded:
        added = sorted(set(current) - set(recorded))
        removed = sorted(set(recorded) - set(current))
        failures.append(
            "repro.api.__all__ drifted from tests/api/public_api_manifest.txt"
            + (f" (added: {added})" if added else "")
            + (f" (removed: {removed})" if removed else "")
            + "; regenerate the manifest and update docs/api.md"
        )

    for name in current:
        try:
            via_api = getattr(api, name)
            via_pkg = getattr(repro, name)
        except AttributeError as exc:
            failures.append(f"surface name {name!r} does not resolve: {exc}")
            continue
        if via_api is not via_pkg:
            failures.append(
                f"'from repro import {name}' does not route through repro.api"
            )

    docs = DOCS.read_text() if DOCS.exists() else ""
    if not docs:
        failures.append("docs/api.md is missing")
    else:
        missing = [name for name in current if f"`{name}`" not in docs]
        if missing:
            failures.append(f"docs/api.md does not mention: {missing}")

    if failures:
        for failure in failures:
            print(f"FAIL: {failure}", file=sys.stderr)
        return 1
    print(f"public API surface OK ({len(current)} names, API {api.API_VERSION})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
