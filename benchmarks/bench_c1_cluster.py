"""Cluster C1 — sharded scaling, shard-count invariance, and drill costs.

The serve bench (S1) measures one fabric; this bench measures the
cluster facade running many of them.  Two tables:

* **shard arms** — the same seeded churn at 1/2/4/8 shards: the
  client-visible metrics must be identical (the shard-count-invariance
  contract), while per-shard load spreads across the pool;
* **drill arms** — healthy churn vs a shard-kill failover vs an elastic
  scale-up, all under the same seed: what each drill costs in moves,
  and the zero-lost-sessions invariant through every one of them;
* **protection arms** — the shard-kill-plus-faults drill with backup
  plans off (F=0) and on (F=2): the recovery-tick distribution shrinks
  while the client-visible invariant stays byte-identical.
"""

import json

from _common import emit

from repro.cluster.bench import run_cluster_bench
from repro.sim.faults import FaultProcessConfig

CHURN = dict(
    ports=16,
    conferences=200,
    seed=0,
    arrival_rate=4.0,
    mean_size=4.0,
    mean_hold_ticks=15.0,
    resize_prob=0.25,
)
FAULTS = FaultProcessConfig(mean_time_to_failure=300.0, mean_time_to_repair=6.0)


def shard_rows():
    rows = []
    invariants = []
    for shards in (1, 2, 4, 8):
        report = run_cluster_bench(shards=shards, **CHURN)
        invariants.append(json.dumps(report.invariant(), sort_keys=True))
        cl = report.cluster
        busiest = max(
            info["service"]["admitted"] for info in report.per_shard.values()
        )
        rows.append(
            {
                "shards": shards,
                "admitted": cl["admitted"],
                "applied": cl["applied"],
                "rejected": cl["rejected"],
                "mean_latency": round(cl["mean_admission_latency"], 2),
                "busiest_shard": busiest,
                "lost": report.lost_sessions,
            }
        )
    return rows, invariants


def drill_rows():
    rows = []
    arms = (
        ("healthy", dict()),
        ("shard kill + faults", dict(kill_shard_at=8, fault_process=FAULTS)),
        ("elastic scale-up", dict(add_shard_at=12)),
    )
    for label, extra in arms:
        report = run_cluster_bench(shards=4, **CHURN, **extra)
        cl = report.cluster
        rows.append(
            {
                "drill": label,
                "admitted": cl["admitted"],
                "failovers": cl["failovers"],
                "migrations": cl["migrations"],
                "transitions": report.fault_transitions,
                "consistency": "ok" if not report.consistency else "BROKEN",
                "lost": report.lost_sessions,
            }
        )
    return rows


def protection_rows():
    rows = []
    invariants = []
    for protection in (0, 2):
        report = run_cluster_bench(
            shards=4,
            kill_shard_at=8,
            fault_process=FAULTS,
            protection=protection,
            **CHURN,
        )
        invariants.append(json.dumps(report.invariant(), sort_keys=True))
        rec = report.recovery
        rows.append(
            {
                "protection": protection,
                "plan_hits": rec["plan_hits"],
                "plan_misses": rec["plan_misses"],
                "plan_stale": rec["plan_stale"],
                "recovery_events": rec["recovery_events"],
                "recovery_mean": rec["recovery_ticks_mean"],
                "recovery_p50": rec["recovery_ticks_p50"],
                "recovery_p95": rec["recovery_ticks_p95"],
                "recovery_max": rec["recovery_ticks_max"],
                "lost": report.lost_sessions,
                "consistency": "ok" if not report.consistency else "BROKEN",
            }
        )
    return rows, invariants


def test_c1_cluster(benchmark):
    benchmark(
        lambda: run_cluster_bench(
            shards=2,
            ports=16,
            conferences=40,
            seed=0,
            arrival_rate=4.0,
            mean_hold_ticks=8.0,
        )
    )

    rows, invariants = shard_rows()
    emit(
        "c1_cluster_shards",
        rows,
        title="C1: identical churn across shard counts (client metrics invariant)",
    )
    # The headline contract: the client-visible story is byte-identical
    # no matter how many shards serve it.
    assert len(set(invariants)) == 1
    assert all(r["lost"] == 0 for r in rows)

    rows = drill_rows()
    emit(
        "c1_cluster_drills",
        rows,
        title="C1: failover and elastic drills under seeded churn (4 shards)",
    )
    # Drills cost moves, never sessions.
    assert all(r["lost"] == 0 for r in rows)
    assert all(r["consistency"] == "ok" for r in rows)
    killed = next(r for r in rows if "kill" in r["drill"])
    assert killed["failovers"] > 0 and killed["transitions"] > 0

    prot_rows, prot_invariants = protection_rows()
    emit(
        "c1_protection_drill",
        prot_rows,
        title="C1: shard-kill + fault drill, reactive (F=0) vs protected (F=2)",
    )
    # Bit-identity across the whole cluster: the client-visible story of
    # the drill is byte-identical with protection on or off.
    assert len(set(prot_invariants)) == 1
    reactive, protected = prot_rows
    assert reactive["recovery_events"] == protected["recovery_events"]
    assert protected["recovery_mean"] <= reactive["recovery_mean"]
    assert protected["plan_hits"] > 0 and reactive["plan_hits"] == 0
    assert all(r["lost"] == 0 and r["consistency"] == "ok" for r in prot_rows)
