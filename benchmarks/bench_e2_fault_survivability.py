"""Extension E2 — fault survivability: relay footprint + extra stages.

Banyan networks have unique paths, so a fault on any link a conference
actually needs is fatal no matter how clever the router is.  Two
mechanisms still buy tolerance:

* the mux relay shrinks each conference's footprint (fewer links that
  can kill it) — measured to be a *marginal* effect on random
  conference populations, because most conferences span near-full
  depth anyway; and
* extra-stage networks re-toggle address bits, giving the relay late
  taps that survive early-link faults — measured to be the *dominant*
  effect: one extra stage already lifts 8-fault survival from 19% to
  70%, and the full Benes mirror survives essentially everything.

This bench sweeps the fault count and reports the fraction of a fixed
conference population that stays routable, for the plain cube with and
without relay and for the extra-stage variants.
"""

import numpy as np
from _common import emit

from repro.analysis.resilience import random_link_faults, survivability
from repro.core.conference import Conference
from repro.topology.builders import build
from repro.util.rng import ensure_rng

N_PORTS = 32
FAULTS = (1, 2, 4, 8, 16)
DRAWS = 40


def population(seed=0):
    """A fixed mix of small/medium conferences over the port space."""
    rng = ensure_rng(seed)
    perm = [int(p) for p in rng.permutation(N_PORTS)]
    sizes = [2, 2, 3, 4, 4, 5, 6]
    confs, cursor = [], 0
    for i, size in enumerate(sizes):
        confs.append(Conference.of(perm[cursor : cursor + size], i))
        cursor += size
    return confs


def build_rows():
    confs = population()
    configs = [
        ("indirect-binary-cube", True, "cube + relay"),
        ("indirect-binary-cube", False, "cube, no relay"),
        ("extra-stage-cube", True, "extra-stage + relay"),
        ("benes-cube", True, "benes + relay"),
    ]
    rows = []
    for topo, relay, label in configs:
        net = build(topo, N_PORTS)
        for n_faults in FAULTS:
            rates = []
            for draw in range(DRAWS):
                # Draw faults within the cube's levels so every config
                # faces the same physical fault pattern.
                faults = random_link_faults(
                    build("indirect-binary-cube", N_PORTS), n_faults, seed=1000 * n_faults + draw
                )
                rates.append(survivability(net, confs, faults, relay_enabled=relay).survival_rate)
            rows.append(
                {
                    "design": label,
                    "faults": n_faults,
                    "mean_survival": float(np.mean(rates)),
                    "min_survival": float(np.min(rates)),
                }
            )
    return rows


def test_e2_fault_survivability(benchmark):
    confs = population()
    net = build("benes-cube", N_PORTS)
    faults = random_link_faults(build("indirect-binary-cube", N_PORTS), 8, seed=1)
    benchmark(lambda: survivability(net, confs, faults))
    rows = build_rows()
    emit(
        "e2_fault_survivability",
        rows,
        title=f"E2: conference survival under random link faults (N={N_PORTS}, {DRAWS} draws)",
    )
    by = {(r["design"], r["faults"]): r["mean_survival"] for r in rows}
    for n_faults in FAULTS:
        # Relay beats no-relay (smaller footprint)...
        assert by[("cube + relay", n_faults)] >= by[("cube, no relay", n_faults)]
        # ...and extra stages beat the plain cube (alternate taps).
        assert by[("benes + relay", n_faults)] >= by[("cube + relay", n_faults)]
    # Extra stages dominate: strictly and substantially better somewhere.
    assert any(
        by[("benes + relay", f)] > by[("cube + relay", f)] + 0.3 for f in FAULTS
    )
    assert any(
        by[("extra-stage + relay", f)] > by[("cube + relay", f)] + 0.3 for f in FAULTS
    )
    # The relay's own footprint effect is real but small on this
    # population (the load-bearing relay-vs-no-relay comparison for
    # small conferences lives in tests/analysis/test_resilience.py).
    assert all(
        by[("cube + relay", f)] >= by[("cube, no relay", f)] for f in FAULTS
    )
