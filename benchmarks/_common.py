"""Shared plumbing for the benchmark/experiment harness.

Every ``bench_*.py`` file regenerates one table or figure from the
experiment index in DESIGN.md.  Each emits:

* a timing (pytest-benchmark) of the experiment's computational kernel,
* the regenerated table, printed and written under
  ``benchmarks/results/`` as both ``.txt`` and ``.csv``.

Run everything with ``pytest benchmarks/ --benchmark-only``.
"""

from __future__ import annotations

from collections.abc import Mapping, Sequence
from pathlib import Path

from repro.report.tables import render_table, write_csv

RESULTS_DIR = Path(__file__).parent / "results"


def emit(
    experiment: str,
    rows: Sequence[Mapping[str, object]],
    title: str,
    columns: "Sequence[str] | None" = None,
) -> str:
    """Print and persist one experiment's regenerated table."""
    table = render_table(rows, columns=columns, title=title)
    RESULTS_DIR.mkdir(parents=True, exist_ok=True)
    (RESULTS_DIR / f"{experiment}.txt").write_text(table + "\n")
    write_csv(RESULTS_DIR / f"{experiment}.csv", rows, columns=columns)
    print(f"\n{table}\n")
    return table
