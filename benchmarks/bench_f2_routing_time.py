"""Experiment F2 — routing setup time vs network size, per strategy.

The abstract's "simpler self-routing algorithm" claim, measured two
ways: a sequential per-object ``route_conference`` loop and the
columnar bitset kernel behind ``route_batch``, over the same seeded
conference batches.  Every timed cell first asserts byte-identity of
the two strategies' outputs (``repr`` for ``repr``) — the speedup is
only worth reporting because the results are indistinguishable.

Per-cell and aggregate routes/sec land in
``benchmarks/results/f2_routing_time.*`` and the repo-root
``BENCH_f2.json`` so the headline claim (the batch kernel routes the
whole F2 sweep >= 10x faster than the sequential loop) is auditable.
The in-test acceptance bound is deliberately looser (shared CI
machines jitter); the checked-in artifact records the measured ratio.

Run directly (``python benchmarks/bench_f2_routing_time.py``) or via
pytest.
"""

import json
import time
from pathlib import Path

import pytest
from _common import emit

from repro.core.batch import BatchRouteOutcome, route_batch
from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.util.rng import ensure_rng

SIZES = (16, 64, 256, 1024)
BATCH = 256
SEED = 42
#: Headline target recorded in the artifact; the test asserts a looser
#: floor so machine jitter cannot fail CI.
SPEEDUP_TARGET = 10.0
SPEEDUP_FLOOR = 3.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_f2.json"


def sample_conferences(n_ports, count, seed=SEED):
    rng = ensure_rng(seed)
    confs = []
    for cid in range(count):
        size = 2 + int(rng.poisson(2.0))
        members = rng.choice(n_ports, size=min(size, n_ports), replace=False)
        confs.append(Conference.of((int(m) for m in members), cid))
    return confs


def route_sequential(net, confs):
    """The pre-batch baseline: one ``route_conference`` call per object."""
    outcomes = []
    for conf in confs:
        try:
            outcomes.append(BatchRouteOutcome(conf, route_conference(net, conf), None))
        except ValueError as exc:
            outcomes.append(BatchRouteOutcome(conf, None, exc))
    return outcomes


def _cells():
    for name in sorted(PAPER_TOPOLOGIES):
        for n_ports in SIZES:
            yield name, n_ports


STRATEGIES = {
    "sequential": route_sequential,
    "bitset": route_batch,
}


def _time_strategy(net, confs, strategy, reps):
    best = float("inf")
    outcomes = None
    for _ in range(reps):
        t0 = time.perf_counter()
        outcomes = STRATEGIES[strategy](net, confs)
        best = min(best, time.perf_counter() - t0)
    return best, outcomes


def build_rows():
    rows = []
    total = {"sequential": 0.0, "bitset": 0.0}
    for name, n_ports in _cells():
        net = build(name, n_ports)
        confs = sample_conferences(n_ports, BATCH)
        net.successor_table  # warm the cached wiring tables
        net.predecessor_table
        reps = 3 if n_ports <= 256 else 2
        wall = {}
        results = {}
        for strategy in ("sequential", "bitset"):
            wall[strategy], results[strategy] = _time_strategy(
                net, confs, strategy, reps
            )
            total[strategy] += wall[strategy]
        # Identity first, speed second: a fast wrong kernel is worthless.
        for got, want in zip(results["bitset"], results["sequential"]):
            assert got.ok == want.ok
            if got.ok:
                assert repr(got.route) == repr(want.route)
            else:
                assert got.error.args == want.error.args
        rows.append(
            {
                "topology": name,
                "N": n_ports,
                "batch": BATCH,
                "sequential_us_per_conf": round(wall["sequential"] / BATCH * 1e6, 2),
                "bitset_us_per_conf": round(wall["bitset"] / BATCH * 1e6, 2),
                "bitset_routes_per_s": round(BATCH / wall["bitset"]),
                "speedup": round(wall["sequential"] / wall["bitset"], 2),
            }
        )
    return rows, total


def write_artifacts():
    rows, total = build_rows()
    aggregate = total["sequential"] / total["bitset"]
    emit(
        "f2_routing_time",
        rows,
        title=f"F2: routing time per conference, sequential loop vs bitset kernel "
        f"(batches of {BATCH}; aggregate speedup {aggregate:.1f}x)",
    )
    payload = {
        "experiment": "f2_routing_time",
        "workload": {
            "topologies": sorted(PAPER_TOPOLOGIES),
            "sizes": list(SIZES),
            "batch": BATCH,
            "seed": SEED,
        },
        "cells": rows,
        "wall_seconds": {
            "sequential": total["sequential"],
            "bitset": total["bitset"],
        },
        "aggregate_speedup": aggregate,
        "target_speedup": SPEEDUP_TARGET,
        "meets_target": aggregate >= SPEEDUP_TARGET,
        "byte_identical": True,
        "note": (
            "aggregate = total sequential wall over total bitset wall for "
            "the whole sweep; byte-identity of every cell's outcomes is "
            "asserted before timing counts"
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert aggregate >= SPEEDUP_FLOOR, (
        f"bitset kernel only {aggregate:.1f}x over the sequential loop — "
        f"below the {SPEEDUP_FLOOR}x floor (target {SPEEDUP_TARGET}x)"
    )
    return payload


@pytest.mark.parametrize("n_ports", SIZES)
@pytest.mark.parametrize("strategy", sorted(STRATEGIES))
def test_f2_routing_time(benchmark, strategy, n_ports):
    net = build("indirect-binary-cube", n_ports)
    confs = sample_conferences(n_ports, 32)
    net.successor_table
    net.predecessor_table
    benchmark(lambda: STRATEGIES[strategy](net, confs))


def test_f2_summary_table(benchmark):
    """Times the full sweep and writes the F2 artifacts."""
    benchmark(lambda: None)
    payload = write_artifacts()
    # Cost is driven by route volume, not port count: per-conference
    # time from N=16 to N=1024 grows far slower than the 64x port ratio.
    by = {
        (r["topology"], r["N"]): r["sequential_us_per_conf"]
        for r in payload["cells"]
    }
    for name in PAPER_TOPOLOGIES:
        assert by[(name, 1024)] / by[(name, 16)] < 64


if __name__ == "__main__":
    print(json.dumps(write_artifacts(), indent=2, sort_keys=True))
