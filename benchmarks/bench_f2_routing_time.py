"""Experiment F2 — self-routing setup time vs network size.

The abstract's "simpler self-routing algorithm" claim, measured: time
to compute a conference route as ``N`` grows, per topology, for a fixed
conference-size distribution.  The natural algorithm touches only the
points a route uses, so per-conference cost grows with the route volume
(O(K * 2^K) for span exponent K), not with network size.
"""

import pytest
from _common import emit

from repro.core.conference import Conference
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.util.rng import ensure_rng

SIZES = (16, 64, 256, 1024)


def sample_conferences(n_ports, count, seed=0):
    rng = ensure_rng(seed)
    confs = []
    for i in range(count):
        size = 2 + int(rng.poisson(2.0))
        members = rng.choice(n_ports, size=min(size, n_ports), replace=False)
        confs.append(Conference.of(int(m) for m in members))
    return confs


@pytest.mark.parametrize("n_ports", SIZES)
@pytest.mark.parametrize("name", sorted(PAPER_TOPOLOGIES))
def test_f2_routing_time(benchmark, name, n_ports):
    net = build(name, n_ports)
    confs = sample_conferences(n_ports, 32, seed=42)
    net.successor_table  # warm the cached wiring tables
    net.predecessor_table

    def kernel():
        for conf in confs:
            route_conference(net, conf)

    benchmark(kernel)


def test_f2_summary_table(benchmark):
    """Collects mean per-conference routing time into the F2 table."""
    import time

    rows = []
    for name in sorted(PAPER_TOPOLOGIES):
        for n_ports in SIZES:
            net = build(name, n_ports)
            confs = sample_conferences(n_ports, 32, seed=42)
            net.successor_table
            net.predecessor_table
            t0 = time.perf_counter()
            reps = 3
            for _ in range(reps):
                for conf in confs:
                    route_conference(net, conf)
            per_conf_us = (time.perf_counter() - t0) / (reps * len(confs)) * 1e6
            rows.append(
                {"topology": name, "N": n_ports, "route_time_us": round(per_conf_us, 1)}
            )
    benchmark(lambda: None)
    emit("f2_routing_time", rows, title="F2: self-routing time per conference (microseconds)")
    # Routing stays in the low-millisecond range even at N=1024 for every
    # topology (generous bound: wall-clock of a shared machine, not a
    # performance spec — the pytest-benchmark timings above are the data).
    assert all(r["route_time_us"] < 50_000 for r in rows)
    # And cost is driven by route volume, not port count: the jump from
    # N=16 to N=1024 stays well under the 64x port ratio.
    by = {(r["topology"], r["N"]): r["route_time_us"] for r in rows}
    for name in ("baseline", "omega", "indirect-binary-cube"):
        assert by[(name, 1024)] / by[(name, 16)] < 64
