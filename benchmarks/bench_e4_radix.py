"""Extension E4 — switch radix vs link dilation at fixed port count.

The paper's class uses 2x2 switch modules; generalizing to r x r
switches trades silicon in the modules against dilation on the links:
at ``N = r**n`` the radix-``r`` cube's worst-case multiplicity is
``r**floor(n/2)``, so at fixed ``N = 64`` the worst case drops from 8
(r=2, n=6) to 4 (r=4, n=3) and back up to 8 (r=8, n=2, where a single
mid-link sees everything).  The cost rows price the exchange with the
same gate-equivalent model as T3: at N=64 the radix-4 design is the
cheapest worst-case-safe configuration.
"""

from _common import emit

from repro.analysis.theory import radix_cube_link_multiplicity, radix_max_multiplicity
from repro.analysis.worstcase import matching_lower_bound
from repro.topology.builders import radix_cube
from repro.topology.permutations import digit_count

N_PORTS = 64
RADICES = (2, 4, 8)


def cost_at_worst_dilation(n_ports: int, radix: int, dilation: int) -> int:
    """Gate-equivalents of the radix-r cube provisioned for ``dilation``.

    Same proxy as repro.analysis.cost: an r x r module costs ``r**2``
    crosspoints plus ``r`` mixers of ``r`` inputs, replicated per
    channel; the relay needs an (n+1)-to-1 mux per output.
    """
    n = digit_count(n_ports, radix)
    switches = n * (n_ports // radix)
    crosspoints = switches * radix * radix * dilation
    mixer_inputs = switches * radix * radix * dilation
    mux_inputs = n_ports * (n + 1)
    return crosspoints + mixer_inputs + mux_inputs


def build_rows():
    rows = []
    for radix in RADICES:
        net = radix_cube(N_PORTS, radix)
        n = net.n_stages
        measured = matching_lower_bound(net).multiplicity
        law = radix_max_multiplicity(n, radix)
        rows.append(
            {
                "radix": radix,
                "stages": n,
                "switches": net.n_switches,
                "worst_dilation_measured": measured,
                "worst_dilation_law": law,
                "gates_at_worst_dilation": cost_at_worst_dilation(N_PORTS, radix, measured),
            }
        )
    return rows


def test_e4_radix(benchmark):
    benchmark(lambda: matching_lower_bound(radix_cube(N_PORTS, 4)))
    rows = build_rows()
    emit("e4_radix", rows, title=f"E4: switch radix vs worst-case dilation (N={N_PORTS})")
    by = {r["radix"]: r for r in rows}
    for row in rows:
        assert row["worst_dilation_measured"] == row["worst_dilation_law"]
    # The headline trade: radix 4 halves the worst case at N=64...
    assert by[4]["worst_dilation_measured"] == by[2]["worst_dilation_measured"] // 2
    # ...and is the cheapest worst-case-safe design of the three.
    assert by[4]["gates_at_worst_dilation"] < by[2]["gates_at_worst_dilation"]
    assert by[4]["gates_at_worst_dilation"] < by[8]["gates_at_worst_dilation"]
    # Per-level laws hold at every radix (spot check mid-link).
    for radix in RADICES:
        n = by[radix]["stages"]
        for t in range(1, n + 1):
            assert radix_cube_link_multiplicity(t, n, radix) == min(
                radix**t, radix ** (n - t)
            )
