"""Ablation A3 — the mux relay's latency value.

Same comparison axis as A2, different metric: per-member *latency*,
counted as switching stages traversed before the member's output tap.
With the relay, block-local conferences exit after ``K`` stages (their
span exponent); without it every signal crosses all ``n`` stages.  The
clustered workload shows the relay at its best; uniform traffic still
benefits because small conferences are usually sub-spanning.
"""

import numpy as np
from _common import emit

from repro.core.routing import RoutingPolicy, TapPolicy, route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.workloads.generators import clustered, uniform_partition

N_PORTS = 128
TRIALS = 20


def _latencies(net, sets, policy):
    stages = []
    for cs in sets:
        for conf in cs:
            route = route_conference(net, conf, policy)
            stages.extend(route.taps.values())
    return np.asarray(stages, dtype=float)


def build_rows():
    rows = []
    for name in PAPER_TOPOLOGIES:
        net = build(name, N_PORTS)
        for workload, gen in (("uniform", uniform_partition), ("clustered", clustered)):
            sets = [gen(N_PORTS, load=0.6, seed=400 + i) for i in range(TRIALS)]
            on = _latencies(net, sets, RoutingPolicy(tap_policy=TapPolicy.EARLIEST))
            off = _latencies(net, sets, RoutingPolicy(tap_policy=TapPolicy.FINAL))
            rows.append(
                {
                    "topology": name,
                    "workload": workload,
                    "stages_relay_on": float(on.mean()),
                    "stages_relay_off": float(off.mean()),
                    "latency_saved_pct": 100.0 * (1 - on.mean() / off.mean()),
                }
            )
    return rows


def test_a3_mux_relay(benchmark):
    net = build("indirect-binary-cube", N_PORTS)
    cs = clustered(N_PORTS, load=0.6, seed=11)
    benchmark(lambda: [route_conference(net, c) for c in cs])
    rows = build_rows()
    emit("a3_mux_relay", rows, title=f"A3: mux relay latency ablation (N={N_PORTS})")
    n = N_PORTS.bit_length() - 1
    for row in rows:
        assert row["stages_relay_off"] == n  # without relay, all n stages
        assert row["stages_relay_on"] < row["stages_relay_off"]
    by = {(r["topology"], r["workload"]): r for r in rows}
    # Locality amplifies the relay's value on the block-structured cube.
    cube = by[("indirect-binary-cube", "clustered")]
    assert cube["latency_saved_pct"] > by[("indirect-binary-cube", "uniform")]["latency_saved_pct"]
