"""Observability O1 — the live health stack must be close to free.

The SLO engine's contract is two-sided: bit-transparent (an
instrumented run and a bare run of the same seed produce *equal*
reports — asserted here before any timing counts) and cheap (turning
the live health additions — SLO evaluator, flight recorder ring, and
a live scrape endpoint — on over the existing tracer + metrics
telemetry costs less than :data:`OVERHEAD_TARGET` of admission
throughput).

Three arms run the same seeded churn-with-faults workload:

* ``bare`` — no observability at all (context only);
* ``telemetry`` — tracer + metrics registry (the pre-existing stack);
* ``live`` — telemetry plus SLO evaluator, flight recorder and a
  running exposition endpoint.

Arms are interleaved and the best wall time of each is kept so machine
drift hits all equally; stack construction and endpoint start/stop
happen outside the timed region (endpoint shutdown waits out a poll
interval, which is lifecycle cost, not per-tick cost).  Measured
overhead lands in the repo-root ``BENCH_o1.json`` and
``benchmarks/results/o1_observability.*``; the in-test bound is
deliberately looser (shared CI machines jitter) — the artifact records
the real number.

Run directly (``python benchmarks/bench_o1_observability.py``) or via
pytest.
"""

import gc
import json
import time
from pathlib import Path

from _common import emit

from repro.core.healing import RetryPolicy
from repro.obs import (
    ExpositionServer,
    FlightRecorder,
    MetricsRegistry,
    SLOEvaluator,
    Tracer,
)
from repro.serve.bench import run_serve_bench
from repro.sim.faults import FaultProcessConfig

N_PORTS = 64
REPS = 6
#: Headline budget recorded in the artifact; the test asserts a looser
#: ceiling so machine jitter cannot fail CI.
OVERHEAD_TARGET = 0.05
OVERHEAD_CEIL = 0.25
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_o1.json"

WORKLOAD = dict(
    conferences=400,
    seed=0,
    arrival_rate=5.0,
    mean_size=3.5,
    mean_hold_ticks=12.0,
    resize_prob=0.25,
    queue_capacity=128,
    retry=RetryPolicy(max_retries=5, base_delay=1.0),
    fault_process=FaultProcessConfig(
        mean_time_to_failure=800.0, mean_time_to_repair=4.0
    ),
)


def _timed_bench(**extra):
    """Run the workload and return (report, workload wall seconds).

    Collects garbage first so a collection triggered by the previous
    arm's retained telemetry doesn't land inside this arm's window.
    """
    gc.collect()
    t0 = time.perf_counter()
    report = run_serve_bench(N_PORTS, **extra, **WORKLOAD)
    return report, time.perf_counter() - t0


def run_bare():
    report, wall = _timed_bench()
    return report, wall, None


def run_telemetry():
    """The pre-existing observability: trace stream + metrics registry."""
    report, wall = _timed_bench(tracer=Tracer(), metrics=MetricsRegistry())
    return report, wall, None


def run_live():
    """Telemetry plus the live health additions: SLO, flight, endpoint."""
    tracer = Tracer()
    registry = MetricsRegistry()
    slo = SLOEvaluator()
    flight = FlightRecorder()
    flight.watch(tracer)
    flight.attach_slo(slo)
    with ExpositionServer(metrics=registry, slo=slo):
        report, wall = _timed_bench(
            tracer=tracer, metrics=registry, slo=slo, flight=flight
        )
    return report, wall, (tracer, slo, flight)


ARMS = {"bare": run_bare, "telemetry": run_telemetry, "live": run_live}


def measure():
    walls = dict.fromkeys(ARMS, float("inf"))
    reports = {}
    live_stack = None
    for _ in range(REPS):  # interleave arms so drift hits all equally
        for arm, run in ARMS.items():
            reports[arm], wall, stack = run()
            walls[arm] = min(walls[arm], wall)
            if stack is not None:
                live_stack = stack
    return reports, walls, live_stack


def write_artifacts():
    reports, walls, (tracer, slo, flight) = measure()

    # Transparency first, speed second: the timing only means anything
    # because every instrumented run is *equal*, not statistically close.
    assert reports["telemetry"] == reports["bare"]
    assert reports["live"] == reports["bare"]
    # ...and the stack actually observed the run (a dead tracer would
    # make the differential vacuous).
    assert tracer.emitted > 0
    assert slo.last is not None
    assert flight.seen > 0

    admitted = reports["bare"].service["admitted"]
    overhead = walls["live"] / walls["telemetry"] - 1.0
    rows = [
        {
            "arm": arm,
            "wall_s": round(walls[arm], 4),
            "admitted_per_s": round(admitted / walls[arm]),
            "vs_bare": f"{(walls[arm] / walls['bare'] - 1.0) * 100:+.1f}%",
        }
        for arm in ARMS
    ]
    emit(
        "o1_observability",
        rows,
        title=(
            f"O1: live health stack overhead (N={N_PORTS}; live vs telemetry "
            f"{overhead * 100:+.1f}% against a {OVERHEAD_TARGET * 100:.0f}% budget)"
        ),
    )
    payload = {
        "experiment": "o1_observability",
        "workload": {
            "n_ports": N_PORTS,
            "conferences": WORKLOAD["conferences"],
            "seed": WORKLOAD["seed"],
            "reps": REPS,
            "ticks": reports["bare"].ticks,
            "fault_transitions": reports["bare"].fault_transitions,
        },
        "arms": rows,
        "admission_throughput_overhead": overhead,
        "overhead_target": OVERHEAD_TARGET,
        "meets_target": overhead <= OVERHEAD_TARGET,
        "bit_transparent": True,
        "slo_state": slo.state,
        "flight_events_seen": flight.seen,
        "note": (
            "overhead = live wall over telemetry wall - 1, best of "
            f"{REPS} interleaved reps each; report equality across all "
            "three arms is asserted before timing counts"
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    assert overhead <= OVERHEAD_CEIL, (
        f"live health stack cost {overhead * 100:.1f}% of admission "
        f"throughput — above the {OVERHEAD_CEIL * 100:.0f}% ceiling "
        f"(budget {OVERHEAD_TARGET * 100:.0f}%)"
    )
    return payload


def test_o1_observability_overhead(benchmark):
    benchmark(lambda: None)
    write_artifacts()


if __name__ == "__main__":
    print(json.dumps(write_artifacts(), indent=2, sort_keys=True))
