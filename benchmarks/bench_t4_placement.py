"""Experiment T4 — aligned (Yang 2001) vs arbitrary placement.

The same conference-size workload placed two ways: buddy-aligned blocks
vs uniformly random members.  On the cube (and, under buddy-prefix
placement, omega) aligned placement is conflict-free — multiplicity 1,
no dilation needed — while arbitrary placement demands several channels
per link.  Baseline is the outlier: its recursive wiring splits by
*high* address bits, so even buddy-placed blocks collide (canonically
{0,1} vs {2,3}), which is presumably why the Yang-2001 design built on
the indirect binary cube.  The exhaustive pairwise taxonomy behind
these statements is in tests/analysis/test_aligned_guarantee.py.
"""

import numpy as np
from _common import emit

from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.workloads.generators import aligned_sets, uniform_partition

N_PORTS = 128
TRIALS = 30


def _max_multiplicities(net, sets):
    out = []
    for cs in sets:
        routes = [route_conference(net, c) for c in cs]
        out.append(analyze_conflicts(routes, n_stages=net.n_stages).max_multiplicity)
    return np.asarray(out)


def build_rows():
    rows = []
    for name in PAPER_TOPOLOGIES:
        net = build(name, N_PORTS)
        for placement, gen in (("aligned", aligned_sets), ("uniform", uniform_partition)):
            sets = [gen(N_PORTS, load=0.75, seed=500 + i) for i in range(TRIALS)]
            arr = _max_multiplicities(net, sets)
            rows.append(
                {
                    "topology": name,
                    "placement": placement,
                    "mean_dilation": float(arr.mean()),
                    "max_dilation": int(arr.max()),
                    "conflict_free_runs": int((arr <= 1).sum()),
                    "trials": TRIALS,
                }
            )
    return rows


def test_t4_placement(benchmark):
    net = build("indirect-binary-cube", N_PORTS)
    cs = aligned_sets(N_PORTS, load=0.75, seed=1)
    benchmark(lambda: [route_conference(net, c) for c in cs])
    rows = build_rows()
    emit(
        "t4_placement",
        rows,
        title=f"T4: aligned vs arbitrary placement (N={N_PORTS}, {TRIALS} trials)",
    )
    by = {(r["topology"], r["placement"]): r for r in rows}
    # Yang-2001 guarantee: aligned cube (and buddy-placed omega) are
    # always conflict-free; baseline is not.
    for name in ("indirect-binary-cube", "omega"):
        assert by[(name, "aligned")]["conflict_free_runs"] == TRIALS
        assert by[(name, "aligned")]["max_dilation"] == 1
    assert by[("baseline", "aligned")]["max_dilation"] >= 2
    # Arbitrary placement pays real dilation on every topology.
    for name in PAPER_TOPOLOGIES:
        assert by[(name, "uniform")]["max_dilation"] >= 2
