"""Ablation A1 — natural self-routing vs greedy route pruning.

How much of the natural route is redundant fan-out?  Measured answer:
**none**.  Every point the natural route uses lies on the banyan-unique
path from some member to some tap, so its removal severs that member's
only way there — the natural region is exactly the union of forced
paths and is therefore link-minimal.  Greedy pruning consequently saves
0 links and 0 conflicts on every topology and workload, which is strong
support for the paper's simple self-routing algorithm: there is nothing
a smarter router could shed.
"""

import numpy as np
from _common import emit

from repro.core.conflict import analyze_conflicts
from repro.core.routing import RoutingPolicy, route_conference
from repro.analysis.worstcase import cube_adversarial_set
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.workloads.generators import uniform_partition

N_PORTS = 32
TRIALS = 15


def build_rows():
    rows = []
    natural = RoutingPolicy(prune=False)
    pruned = RoutingPolicy(prune=True)
    for name in PAPER_TOPOLOGIES:
        net = build(name, N_PORTS)
        stats = {"links_nat": [], "links_pru": [], "mult_nat": [], "mult_pru": []}
        for i in range(TRIALS):
            cs = uniform_partition(N_PORTS, load=0.75, seed=900 + i)
            r_nat = [route_conference(net, c, natural) for c in cs]
            r_pru = [route_conference(net, c, pruned) for c in cs]
            stats["links_nat"].append(sum(r.n_links for r in r_nat))
            stats["links_pru"].append(sum(r.n_links for r in r_pru))
            stats["mult_nat"].append(analyze_conflicts(r_nat, net.n_stages).max_multiplicity)
            stats["mult_pru"].append(analyze_conflicts(r_pru, net.n_stages).max_multiplicity)
        rows.append(
            {
                "topology": name,
                "links_natural": float(np.mean(stats["links_nat"])),
                "links_pruned": float(np.mean(stats["links_pru"])),
                "links_saved_pct": 100.0
                * (1 - np.sum(stats["links_pru"]) / np.sum(stats["links_nat"])),
                "mult_natural": float(np.mean(stats["mult_nat"])),
                "mult_pruned": float(np.mean(stats["mult_pru"])),
            }
        )
    return rows


def test_a1_pruning(benchmark):
    net = build("omega", N_PORTS)
    cs = uniform_partition(N_PORTS, load=0.75, seed=3)
    benchmark(lambda: [route_conference(net, c, RoutingPolicy(prune=True)) for c in cs])
    rows = build_rows()
    emit("a1_pruning", rows, title=f"A1: natural vs pruned routing (N={N_PORTS}, mean of {TRIALS} sets)")
    for row in rows:
        # The natural route is link-minimal: pruning finds nothing to cut.
        assert row["links_pruned"] == row["links_natural"]
        assert row["mult_pruned"] == row["mult_natural"]
    # Pruning cannot beat the forced worst case: the adversarial set's
    # conflicts survive because every pair's path through the hot link
    # is unique.
    net = build("indirect-binary-cube", N_PORTS)
    adv = cube_adversarial_set(N_PORTS)
    for policy in (RoutingPolicy(prune=False), RoutingPolicy(prune=True)):
        routes = [route_conference(net, c, policy) for c in adv]
        assert analyze_conflicts(routes, net.n_stages).max_multiplicity == 4
