"""Experiment T2 — per-stage conflict multiplicity profile.

Where in the network do conflicts concentrate?  For each link level
``t``, the exact (matching-optimum) worst multiplicity, compared to the
closed-form laws.  The profiles peak mid-network, and omega's tail is
strictly fatter than the cube/baseline tail — the structural difference
behind its worse odd-``n`` worst case.
"""

from _common import emit

from repro.analysis.theory import stage_profile_law
from repro.analysis.worstcase import matching_stage_profile
from repro.topology.builders import PAPER_TOPOLOGIES, build

SIZES = (16, 32, 64)


def build_rows():
    rows = []
    for n_ports in SIZES:
        n = n_ports.bit_length() - 1
        for name in PAPER_TOPOLOGIES:
            measured = matching_stage_profile(build(name, n_ports))
            law = stage_profile_law(n, topology="omega" if name == "omega" else name)
            rows.append(
                {
                    "N": n_ports,
                    "topology": name,
                    "measured_profile": " ".join(map(str, measured)),
                    "law": " ".join(map(str, law)),
                    "law_kind": "upper-bound" if name == "omega" else "exact",
                }
            )
    return rows


def test_t2_stage_profile(benchmark):
    benchmark(lambda: matching_stage_profile(build("omega", 32)))
    rows = build_rows()
    emit("t2_stage_profile", rows, title="T2: worst multiplicity per link level (t=1..n)")
    for row in rows:
        measured = [int(x) for x in row["measured_profile"].split()]
        law = [int(x) for x in row["law"].split()]
        if row["law_kind"] == "exact":
            assert measured == law, row
        else:
            assert all(m <= b for m, b in zip(measured, law)), row
            assert any(m > c for m, c in zip(measured, stage_profile_law(len(law)))), (
                "omega should exceed the cube law somewhere at these sizes"
            )
