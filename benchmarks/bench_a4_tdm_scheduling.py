"""Ablation A4 — time-division multiplexing vs space dilation.

A conflict multiplicity of ``f`` can be paid in space (f-channel links)
or in time (f slots per frame, conferences coloured into slots).  This
bench measures how many slots greedy colouring of the conflict graph
actually needs relative to the clique bound (= the required dilation).

Measured answer: the currencies are NOT interchangeable at high load —
random conflict graphs at 85% load need ~3 slots beyond the clique
bound on the cube and omega (their conflict structure is spread across
many links, so colouring cannot pack it), while the adversarial worst
case (one hot link = a clique) is scheduled exactly.  Space dilation
therefore buys strictly more than the same factor of TDM.
"""

import numpy as np
from _common import emit

from repro.analysis.scheduling import schedule_slots
from repro.analysis.worstcase import cube_adversarial_set
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.workloads.generators import uniform_partition

N_PORTS = 64
TRIALS = 25


def build_rows():
    rows = []
    for name in PAPER_TOPOLOGIES:
        net = build(name, N_PORTS)
        gaps, slots, cliques = [], [], []
        for i in range(TRIALS):
            cs = uniform_partition(N_PORTS, load=0.85, seed=4200 + i)
            routes = [route_conference(net, c) for c in cs]
            res = schedule_slots(routes)
            slots.append(res.n_slots)
            cliques.append(res.clique_bound)
            gaps.append(res.n_slots - res.clique_bound)
        rows.append(
            {
                "topology": name,
                "mean_slots": float(np.mean(slots)),
                "mean_required_dilation": float(np.mean(cliques)),
                "mean_gap": float(np.mean(gaps)),
                "max_gap": int(np.max(gaps)),
                "optimal_runs_pct": 100.0 * float(np.mean([g == 0 for g in gaps])),
            }
        )
    return rows


def test_a4_tdm_scheduling(benchmark):
    net = build("indirect-binary-cube", N_PORTS)
    cs = uniform_partition(N_PORTS, load=0.85, seed=9)
    routes = [route_conference(net, c) for c in cs]
    benchmark(lambda: schedule_slots(routes))
    rows = build_rows()
    emit(
        "a4_tdm_scheduling",
        rows,
        title=f"A4: TDM slots vs required dilation (N={N_PORTS}, {TRIALS} sets)",
    )
    for row in rows:
        # High-load conflict graphs need real extra slots beyond the
        # clique bound — TDM is a weaker currency than dilation here.
        assert 0.5 <= row["mean_gap"] <= 4.0
        assert row["max_gap"] <= 6
    # The adversarial clique is scheduled exactly (a clique forces its size).
    adv_routes = [route_conference(net, c) for c in cube_adversarial_set(N_PORTS)]
    res = schedule_slots(adv_routes)
    assert res.n_slots == res.clique_bound == 8
