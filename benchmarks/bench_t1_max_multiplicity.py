"""Experiment T1 — maximum conflict multiplicity vs network size.

The paper's key quantity: the worst number of disjoint conferences
competing for one inter-stage link, per topology, as ``N`` grows.
Methods stack by strength: exhaustive enumeration (N <= 8), exact
matching optimum over 2-member conferences (N <= 64), the explicit cube
adversarial construction (any N), and the theoretical laws.

Expected shape: cube and baseline follow ``2**floor(n/2)`` exactly;
omega matches at even ``n`` and exceeds it at odd ``n``.
"""

from _common import emit

from repro.analysis.theory import max_multiplicity_bound
from repro.analysis.worstcase import (
    cube_adversarial_set,
    exhaustive_max_multiplicity,
    matching_lower_bound,
)
from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build

MATCHING_SIZES = (8, 16, 32, 64)
CONSTRUCTION_SIZES = (128, 256, 1024)


def build_rows():
    rows = []
    for name in PAPER_TOPOLOGIES:
        for n_ports in MATCHING_SIZES:
            n = n_ports.bit_length() - 1
            row = {
                "topology": name,
                "N": n_ports,
                "method": "exhaustive" if n_ports <= 8 else "matching-exact",
                "max_multiplicity": (
                    exhaustive_max_multiplicity(build(name, n_ports)).multiplicity
                    if n_ports <= 8
                    else matching_lower_bound(build(name, n_ports)).multiplicity
                ),
                "cube_baseline_law": max_multiplicity_bound(n),
                "omega_bound": max_multiplicity_bound(n, topology="omega"),
            }
            rows.append(row)
    # Constructive lower bounds scale to sizes the search cannot reach.
    for n_ports in CONSTRUCTION_SIZES:
        n = n_ports.bit_length() - 1
        net = build("indirect-binary-cube", n_ports)
        routes = [route_conference(net, c) for c in cube_adversarial_set(n_ports)]
        rows.append(
            {
                "topology": "indirect-binary-cube",
                "N": n_ports,
                "method": "construction",
                "max_multiplicity": analyze_conflicts(routes).max_multiplicity,
                "cube_baseline_law": max_multiplicity_bound(n),
                "omega_bound": max_multiplicity_bound(n, topology="omega"),
            }
        )
    return rows


def test_t1_max_multiplicity(benchmark):
    benchmark(lambda: matching_lower_bound(build("indirect-binary-cube", 32)))
    rows = build_rows()
    emit(
        "t1_max_multiplicity",
        rows,
        title="T1: worst-case conflict multiplicity vs N (higher = more link dilation needed)",
    )
    by_key = {(r["topology"], r["N"]): r for r in rows}
    # Cube and baseline meet their law exactly at every measured size.
    for name in ("indirect-binary-cube", "baseline"):
        for n_ports in MATCHING_SIZES + CONSTRUCTION_SIZES:
            row = by_key.get((name, n_ports))
            if row is not None:
                assert row["max_multiplicity"] == row["cube_baseline_law"]
    # Omega exceeds the cube law at odd n and stays within its own bound.
    assert by_key[("omega", 8)]["max_multiplicity"] == 3
    assert by_key[("omega", 32)]["max_multiplicity"] == 6
    for n_ports in MATCHING_SIZES:
        row = by_key[("omega", n_ports)]
        assert row["cube_baseline_law"] <= row["max_multiplicity"] <= row["omega_bound"]
