"""Extension E1 — do extra stages reduce conflict multiplicity?

The paper's class has exactly ``log2 N`` stages.  A natural follow-up:
Benes-style mirrors (2n-1 stages) and single-extra-stage networks offer
multiple paths — does the natural earliest-tap routing exploit them to
shed conflicts?  Measured answer: **no for conflicts** — with earliest
taps, conferences finish combining within the first ``n`` stages and
never enter the redundant ones, so multiplicity is identical to the
plain cube — but the extra stages transform fault survivability (E2)
and give pruning something to do under final-tap routing.
"""

import numpy as np
from _common import emit

from repro.analysis.worstcase import matching_lower_bound
from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.topology.builders import build
from repro.workloads.generators import uniform_partition

N_PORTS = 32
TOPOLOGIES = ("indirect-binary-cube", "extra-stage-cube", "benes-cube")
TRIALS = 20


def build_rows():
    rows = []
    for name in TOPOLOGIES:
        net = build(name, N_PORTS)
        worst = matching_lower_bound(net).multiplicity
        dils, links, depths = [], [], []
        for i in range(TRIALS):
            cs = uniform_partition(N_PORTS, load=0.75, seed=6000 + i)
            routes = [route_conference(net, c) for c in cs]
            rep = analyze_conflicts(routes, n_stages=net.n_stages)
            dils.append(rep.max_multiplicity)
            links.append(sum(r.n_links for r in routes))
            depths.append(max(r.depth for r in routes))
        rows.append(
            {
                "topology": name,
                "stages": net.n_stages,
                "worst_dilation": worst,
                "random_mean_dilation": float(np.mean(dils)),
                "mean_links": float(np.mean(links)),
                "max_depth_used": int(np.max(depths)),
            }
        )
    return rows


def test_e1_extra_stages(benchmark):
    net = build("benes-cube", N_PORTS)
    cs = uniform_partition(N_PORTS, load=0.75, seed=3)
    benchmark(lambda: [route_conference(net, c) for c in cs])
    rows = build_rows()
    emit(
        "e1_extra_stages",
        rows,
        title=f"E1: extra-stage networks vs the plain cube (N={N_PORTS})",
    )
    by = {r["topology"]: r for r in rows}
    cube = by["indirect-binary-cube"]
    for name in ("extra-stage-cube", "benes-cube"):
        row = by[name]
        # Earliest-tap routing never enters the redundant stages...
        assert row["max_depth_used"] <= cube["stages"]
        # ...so conflicts and link usage match the plain cube exactly.
        assert row["worst_dilation"] == cube["worst_dilation"]
        assert row["random_mean_dilation"] == cube["random_mean_dilation"]
        assert row["mean_links"] == cube["mean_links"]
