"""Extension E3 — group-communication traffic mixes.

The abstract frames conferencing within group communication at large:
"messages from one or more sender(s) are delivered to a large number of
receivers".  This bench compares the three connection shapes on the
same port sets: full conference (everyone talks), multicast (one
speaker), and panel (a few talk, everyone listens), measuring link
usage and conflict pressure on the cube at N=64.

Expected shape: fewer senders -> smaller combining trees -> fewer links
and less contention; a multicast costs roughly half a conference's
links at the same group size.
"""

import os

import numpy as np
from _common import emit

from repro.core.groupcast import GroupConnection, route_group
from repro.parallel.experiments import group_traffic_trial
from repro.parallel.runner import run_trials
from repro.topology.builders import build
from repro.util.rng import ensure_rng

N_PORTS = 64
TRIALS = 25
GROUP_SIZE = 6
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


def draw_port_groups(seed):
    rng = ensure_rng(seed)
    perm = [int(p) for p in rng.permutation(N_PORTS)]
    return [perm[i : i + GROUP_SIZE] for i in range(0, N_PORTS - GROUP_SIZE, GROUP_SIZE)][:8]


def build_rows(workers=WORKERS):
    # Each engine trial draws one family of groups (legacy seed 7000+i)
    # and measures all three connection shapes on it.
    params = {
        "topology": "indirect-binary-cube",
        "n_ports": N_PORTS,
        "group_size": GROUP_SIZE,
        "n_groups": 8,
    }
    records = run_trials(
        group_traffic_trial, TRIALS, params=params,
        seeds=range(7000, 7000 + TRIALS), workers=workers,
    )
    rows = []
    for shape in ("conference", "panel", "multicast"):
        rows.append(
            {
                "shape": shape,
                "senders": {"conference": GROUP_SIZE, "panel": 2, "multicast": 1}[shape],
                "receivers": GROUP_SIZE if shape != "multicast" else GROUP_SIZE - 1,
                "mean_links_per_connection": float(np.mean([r[shape]["mean_links"] for r in records])),
                "mean_depth": float(np.mean([r[shape]["mean_depth"] for r in records])),
                "mean_dilation": float(np.mean([r[shape]["dilation"] for r in records])),
            }
        )
    return rows


def test_e3_group_traffic(benchmark):
    net = build("indirect-binary-cube", N_PORTS)
    groups = draw_port_groups(1)
    benchmark(
        lambda: [
            route_group(net, GroupConnection.multicast(g[0], g[1:], connection_id=i))
            for i, g in enumerate(groups)
        ]
    )
    rows = build_rows()
    emit(
        "e3_group_traffic",
        rows,
        title=f"E3: connection shape vs fabric load (cube, N={N_PORTS}, groups of {GROUP_SIZE})",
    )
    by = {r["shape"]: r for r in rows}
    # Fewer senders -> strictly fewer links and no more contention.
    assert (
        by["multicast"]["mean_links_per_connection"]
        < by["panel"]["mean_links_per_connection"]
        < by["conference"]["mean_links_per_connection"]
    )
    assert by["multicast"]["mean_dilation"] <= by["conference"]["mean_dilation"]
