"""Experiment F3 — call blocking probability vs link dilation.

Dynamic counterpart of T1/T3: conference calls arrive, hold, and leave;
admission control rejects a call when some link it needs is full.  The
curves show how much of the Θ(sqrt(N)) worst-case dilation typical
traffic actually needs: capacity blocking collapses after a dilation of
2-4 at N=64, which is why T3 prices a dilation-2 "statistical" design.
"""

from _common import emit

from repro.core.network import ConferenceNetwork
from repro.parallel.experiments import traffic_arm
from repro.parallel.runner import run_tasks
from repro.sim.scenarios import run_traffic
from repro.sim.traffic import TrafficConfig

import os

N_PORTS = 64
DILATIONS = (1, 2, 3, 4, 8)
TOPOLOGIES = ("indirect-binary-cube", "omega")
CONFIG = TrafficConfig(arrival_rate=2.0, mean_holding=6.0, mean_size=4.0)
DURATION = 1500.0
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


def build_rows(workers=WORKERS):
    # The sweep's arms (topology x dilation) are independent runs off
    # one seed, so they shard cleanly across the engine's workers.
    arms = [
        {"topology": name, "dilation": dilation}
        for name in TOPOLOGIES
        for dilation in DILATIONS
    ]
    params = {"n_ports": N_PORTS, "config": CONFIG, "duration": DURATION, "seed": 2026}
    return [
        {
            "topology": cell["topology"],
            "dilation": cell["dilation"],
            "offered": cell["offered"],
            "capacity_blocking": cell["capacity_blocking"],
            "port_blocking": cell["port_blocking"],
            "mean_live_conferences": round(cell["mean_occupancy"], 2),
        }
        for cell in run_tasks(traffic_arm, arms, params=params, workers=workers)
    ]


def test_f3_blocking(benchmark):
    network = ConferenceNetwork.build("indirect-binary-cube", N_PORTS, dilation=2)
    benchmark(lambda: run_traffic(network, CONFIG, duration=100.0, seed=1))
    rows = build_rows()
    emit(
        "f3_blocking",
        rows,
        title=f"F3: blocking probability vs dilation (N={N_PORTS}, "
        f"{CONFIG.offered_erlangs:.0f} erlangs offered)",
    )
    for name in TOPOLOGIES:
        curve = [r["capacity_blocking"] for r in rows if r["topology"] == name]
        # Blocking collapses as dilation grows and is negligible by 8.
        assert curve[0] > 0.2
        assert curve[-1] < 0.02
        assert curve[0] > curve[2] > curve[-1]
