"""Experiment M1 — delivered throughput of the buffered wormhole fabric.

The conflict analysis (T1) bounds what the adversarial conference set
*needs*: every inter-stage link of the binary-cube adversarial set is
shared by ``m`` conferences, so a fabric must provide dilation (lanes)
or a TDM frame of ``m`` to carry full load.  This experiment measures
what a concrete buffered fabric *delivers* with the cycle-level model:

* **Load sweep** — for lanes ``L ∈ {1, 2, 4}``, offered load is swept
  around the per-conference saturation rate ``r* = min(1/F, L/(m·F))``
  packets/cycle.  The acceptance criterion: delivered throughput tracks
  the offer below ``r*``, plateaus **at** ``r*`` above it — never below
  the bound (the model does not lose capacity to its own queueing) and
  never above (no flit is created).
* **Buffer-depth table** — lane FIFO depth swept at fixed load near the
  knee; deeper buffers absorb burstiness but cannot raise the plateau.
* **TDM vs space** — the same conference set carried by ``m`` space
  lanes versus a time frame of ``n_slots`` colours (bench_a4 prices this
  statically; here both arms are *measured*).  Each arm is driven at
  1.5× its own knee and must deliver its own bound.

Aggregates land in ``benchmarks/results/m1_*.{txt,csv}`` and the
repo-root ``BENCH_m1.json``.  Run directly
(``python benchmarks/bench_m1_perfmodel.py``) or via pytest.
"""

import json
from pathlib import Path

import pytest
from _common import emit

from repro.analysis.scheduling import schedule_slots
from repro.analysis.worstcase import cube_adversarial_set
from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.perfmodel import PerfModelConfig, simulate_delivery
from repro.topology.builders import build

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_m1.json"

TOPOLOGY = "indirect-binary-cube"
N_PORTS = 32
FLITS = 4
CYCLES = 4000
LANE_ARMS = (1, 2, 4)
LOAD_FACTORS = (0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5)
DEPTHS = (1, 2, 4, 8, 16)


def adversarial_routes():
    net = build(TOPOLOGY, N_PORTS)
    return [route_conference(net, c) for c in cube_adversarial_set(N_PORTS)]


def saturation_rate(lanes: int, multiplicity: int) -> float:
    """Per-conference packets/cycle the fabric can sustain: a lane moves
    one flit per cycle, a packet holds it for F cycles, and m sharers
    split L lanes."""
    return min(1.0 / FLITS, lanes / (multiplicity * FLITS))


def load_sweep(routes, multiplicity):
    """One record per (lanes, load factor) point of the sweep."""
    rows = []
    for lanes in LANE_ARMS:
        r_star = saturation_rate(lanes, multiplicity)
        for rho in LOAD_FACTORS:
            report = simulate_delivery(
                routes,
                config=PerfModelConfig(lanes=lanes, flits_per_packet=FLITS),
                cycles=CYCLES,
                offered_load=rho * r_star,
            )
            per_conf = report.delivered_throughput / len(routes)
            lat = report.latency
            rows.append(
                {
                    "lanes": lanes,
                    "load_factor": rho,
                    "offered_per_conf": round(rho * r_star, 5),
                    "delivered_per_conf": round(per_conf, 5),
                    "vs_bound": round(per_conf / r_star, 3),
                    "p50_cycles": lat["p50"] and round(lat["p50"], 1),
                    "p99_cycles": lat["p99"] and round(lat["p99"], 1),
                    "lane_busy_stalls": report.stalls["lane_busy"],
                    "buffer_full_stalls": report.stalls["buffer_full"],
                }
            )
            assert report.ok, report.reason
    return rows


def depth_sweep(routes, multiplicity):
    """Lane-FIFO depth at fixed near-knee load (L=1)."""
    r_star = saturation_rate(1, multiplicity)
    rows = []
    for depth in DEPTHS:
        report = simulate_delivery(
            routes,
            config=PerfModelConfig(lanes=1, buffer_depth=depth, flits_per_packet=FLITS),
            cycles=CYCLES,
            offered_load=0.9 * r_star,
        )
        per_conf = report.delivered_throughput / len(routes)
        rows.append(
            {
                "buffer_depth": depth,
                "delivered_per_conf": round(per_conf, 5),
                "vs_bound": round(per_conf / r_star, 3),
                "p50_cycles": report.latency["p50"] and round(report.latency["p50"], 1),
                "p99_cycles": report.latency["p99"] and round(report.latency["p99"], 1),
                "peak_lane_occupancy": report.peak_lane_occupancy,
            }
        )
        assert report.ok, report.reason
        assert report.peak_lane_occupancy <= depth
    return rows


def tdm_vs_space(routes, multiplicity):
    """Both dilation alternatives measured at 1.5× their own knee."""
    n_slots = schedule_slots(routes).n_slots
    arms = []
    for label, config, r_star in (
        (
            f"space L={multiplicity}",
            PerfModelConfig(lanes=multiplicity, flits_per_packet=FLITS),
            saturation_rate(multiplicity, multiplicity),
        ),
        (
            f"tdm slots={n_slots}",
            PerfModelConfig(tdm=True, flits_per_packet=FLITS),
            1.0 / (FLITS * n_slots),
        ),
    ):
        report = simulate_delivery(
            routes, config=config, cycles=CYCLES, offered_load=1.5 * r_star
        )
        per_conf = report.delivered_throughput / len(routes)
        arms.append(
            {
                "arm": label,
                "bound_per_conf": round(r_star, 5),
                "delivered_per_conf": round(per_conf, 5),
                "vs_bound": round(per_conf / r_star, 3),
                "p50_cycles": report.latency["p50"] and round(report.latency["p50"], 1),
                "tdm_gate_stalls": report.stalls["tdm_gate"],
            }
        )
        assert report.ok, report.reason
    return arms, n_slots


def write_artifacts():
    routes = adversarial_routes()
    multiplicity = analyze_conflicts(routes).max_multiplicity

    sweep = load_sweep(routes, multiplicity)
    emit(
        "m1_load_sweep",
        sweep,
        title=(
            f"M1: delivered vs offered load, adversarial set "
            f"({TOPOLOGY} N={N_PORTS}, m={multiplicity}, F={FLITS}, "
            f"{CYCLES} cycles)"
        ),
    )
    depths = depth_sweep(routes, multiplicity)
    emit(
        "m1_buffer_depth",
        depths,
        title=f"M1: lane-FIFO depth at 0.9×knee (L=1, m={multiplicity})",
    )
    tdm, n_slots = tdm_vs_space(routes, multiplicity)
    emit(
        "m1_tdm_vs_space",
        tdm,
        title=f"M1: space dilation vs TDM frame at 1.5× each knee",
    )

    payload = {
        "experiment": "m1_perfmodel",
        "workload": {
            "topology": TOPOLOGY,
            "n_ports": N_PORTS,
            "conferences": len(routes),
            "max_multiplicity": multiplicity,
            "flits_per_packet": FLITS,
            "cycles": CYCLES,
            "adversarial_set": "cube_adversarial_set",
        },
        "saturation_bounds": {
            str(lanes): saturation_rate(lanes, multiplicity) for lanes in LANE_ARMS
        },
        "load_sweep": sweep,
        "buffer_depth": depths,
        "tdm_vs_space": {"n_slots": n_slots, "arms": tdm},
        "note": (
            "delivered_per_conf is packets/cycle per conference; vs_bound "
            "divides by r* = min(1/F, L/(m*F)).  Acceptance: vs_bound "
            "tracks load_factor below 1.0 and plateaus at 1.0 above — "
            "saturation at, never before, the multiplicity bound."
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # The acceptance criteria, asserted where the artifact is written.
    for lanes in LANE_ARMS:
        arm = [r for r in sweep if r["lanes"] == lanes]
        below = [r for r in arm if r["load_factor"] <= 0.9]
        above = [r for r in arm if r["load_factor"] >= 1.25]
        for r in below:  # delivery tracks the offer under the knee
            assert abs(r["vs_bound"] - r["load_factor"]) <= 0.05 * r["load_factor"], (
                f"L={lanes} ρ={r['load_factor']}: delivered {r['vs_bound']} "
                f"of bound, expected ≈ρ"
            )
        for r in above:  # plateau AT the bound: not before, not beyond
            assert r["vs_bound"] >= 0.95, (
                f"L={lanes} ρ={r['load_factor']}: saturated below the bound "
                f"({r['vs_bound']})"
            )
            assert r["vs_bound"] <= 1.001, (
                f"L={lanes} ρ={r['load_factor']}: delivered above the bound "
                f"({r['vs_bound']})"
            )
    # Deeper buffers never raise the plateau's load point here (0.9×knee
    # is below saturation, so every depth must deliver the offer).
    for r in depths:
        assert r["vs_bound"] >= 0.85, f"depth {r['buffer_depth']} lost throughput"
    for arm in tdm:
        assert arm["vs_bound"] >= 0.95, f"{arm['arm']} delivered below its bound"
        assert arm["vs_bound"] <= 1.001, f"{arm['arm']} delivered above its bound"
    return payload


def test_m1_single_point(benchmark):
    routes = adversarial_routes()
    multiplicity = analyze_conflicts(routes).max_multiplicity
    r_star = saturation_rate(1, multiplicity)
    report = benchmark(
        lambda: simulate_delivery(
            routes, config=PerfModelConfig(flits_per_packet=FLITS),
            cycles=1000, offered_load=0.9 * r_star,
        )
    )
    assert report.ok


def test_m1_artifacts(benchmark):
    benchmark(lambda: None)
    payload = write_artifacts()
    assert payload["workload"]["max_multiplicity"] >= 2


if __name__ == "__main__":
    print(json.dumps(write_artifacts(), indent=2, sort_keys=True))
