"""Experiment W1 — incremental membership churn vs full reroute.

Three measurements back the churn-native membership API:

* **Zipf churn sweep** — conferences with heavy-tailed (Zipf) sizes
  absorb a stream of single-port joins and leaves.  Each operation is
  costed twice from the same before-route: the incremental engine
  touches only its ``links_added + links_removed`` diff, while a full
  reroute reinstalls the whole route (``|before ∪ after|`` links).  The
  headline acceptance: incremental reconfigures **strictly fewer links
  at p50**, with the hitless (no-tap-moved) rate reported alongside.
* **Drift accrual** — a route healed around a since-repaired fault
  carries tap pins; extending it incrementally preserves them, and the
  conflict-multiplicity drift (extra links vs a from-scratch route) is
  measured per accreted member, without a limit and with
  ``drift_limit=0`` (every drifting extend falls back to a full
  reroute, resetting the pins).
* **Flash-crowd drill** — the service-level sanity check the CI job
  replays: a flash crowd floods one venue conference while a fault
  timeline fires underneath; zero sessions may be lost.

Aggregates land in ``benchmarks/results/w1_churn.*`` and the repo-root
``BENCH_w1.json``.  Run directly (``python benchmarks/bench_w1_churn.py``)
or via pytest.
"""

import json
from pathlib import Path

import numpy as np
import pytest
from _common import emit

from repro.core.churn import extend_route, join_member, leave_member
from repro.core.conference import Conference
from repro.core.healing import RetryPolicy
from repro.core.network import ConferenceNetwork
from repro.core.routing import UnroutableError, route_conference
from repro.serve.service import FabricService
from repro.sim.faults import FaultProcessConfig, generate_fault_timeline
from repro.topology.builders import build
from repro.util.rng import ensure_rng
from repro.workloads.churn import flash_crowd, replay_churn, zipf_sizes

BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_w1.json"

TOPOLOGY = "indirect-binary-cube"
N_PORTS = 64
CONFERENCES = 48
CHURN_OPS = 8  # join/leave pairs per conference
SEED = 11


def zipf_churn_ops(seed=SEED):
    """Yield per-operation cost records for the Zipf churn sweep.

    Each conference routes once, then alternates single-port joins and
    leaves; every operation records the incremental diff cost and the
    wholesale-reinstall cost of the identical membership change.
    """
    net = build(TOPOLOGY, N_PORTS)
    rng = ensure_rng(seed)
    sizes = zipf_sizes(CONFERENCES, alpha=1.8, min_size=2, max_size=16, seed=rng.spawn(1)[0])
    ops = []
    for cid, size in enumerate(sizes):
        members = sorted(int(p) for p in rng.choice(N_PORTS, size=size, replace=False))
        route = route_conference(net, Conference.of(members, cid))
        for _ in range(CHURN_OPS):
            outside = sorted(set(range(N_PORTS)) - set(route.conference.members))
            if not outside:
                break
            port = outside[int(rng.integers(len(outside)))]
            for kind, fn, target in (
                ("join", join_member, port),
                ("leave", leave_member, port),
            ):
                before = route
                churn = fn(net, before, target)
                route = churn.after
                ops.append(
                    {
                        "kind": kind,
                        "incremental": churn.links_touched,
                        "full": len(before.links | churn.after.links),
                        "hitless": churn.hitless,
                        "taps_moved": len(churn.taps_moved),
                        "drift": churn.drift_links,
                    }
                )
    return ops


def drift_scenarios(n_ports=16, max_scenarios=12, lurkers=4, seed=SEED):
    """Accrete lurkers onto fault-healed omega routes, with/without limit.

    A single link fault that survives rerouting leaves the healed route
    with non-natural taps; once the fault repairs, incremental extends
    pin those taps and drift (extra links vs from-scratch) can accrue.
    Returns per-scenario records for both arms.
    """
    net = build("omega", n_ports)
    rng = ensure_rng(seed)
    scenarios = []
    attempts = 0
    while len(scenarios) < max_scenarios and attempts < 400:
        attempts += 1
        members = sorted(int(p) for p in rng.choice(n_ports, size=3, replace=False))
        conf = Conference.of(members, attempts)
        healthy = route_conference(net, conf)
        healed = None
        for fault in sorted(healthy.links):
            try:
                candidate = route_conference(net, conf, faults=frozenset({fault}))
            except UnroutableError:
                continue
            if candidate.taps != healthy.taps:
                healed = candidate
                break
        if healed is None:
            continue
        outside = sorted(set(range(n_ports)) - set(members))
        joins = [outside[int(i)] for i in rng.choice(len(outside), size=lurkers, replace=False)]
        row = {"members": tuple(members), "fault_healed": True}
        for label, kwargs in (("unlimited", {}), ("limit0", {"drift_limit": 0})):
            route, drifts, fallbacks = healed, [], 0
            for port in joins:
                churn = extend_route(net, route, port, **kwargs)
                route = churn.after
                drifts.append(churn.drift_links)
                if churn.mode == "full-reroute":
                    fallbacks += 1
            row[f"{label}_max_drift"] = max(drifts)
            row[f"{label}_final_drift"] = drifts[-1]
            row[f"{label}_fallbacks"] = fallbacks
        scenarios.append(row)
    return scenarios


def flash_crowd_drill(n_ports=32, fault_seed=0):
    """Replay a flash crowd over a live fault timeline; nothing may be lost."""
    network = ConferenceNetwork.build(TOPOLOGY, n_ports, dilation=n_ports)
    service = FabricService(network, retry=RetryPolicy(max_retries=8, base_delay=1.0))
    timeline = generate_fault_timeline(
        network.topology,
        FaultProcessConfig(mean_time_to_failure=2000.0, mean_time_to_repair=2.0),
        40.0,
        seed=ensure_rng(fault_seed),
    )
    injector = service.attach_faults(timeline)
    events = flash_crowd(n_ports, crowd=n_ports // 4, burst_start=4, burst_ticks=3, seed=SEED)
    records = replay_churn(service, events, settle_ticks=256)
    counts = service.sessions.counts()
    changes = [r for r in records if r["kind"] in ("join", "leave") and r["ok"]]
    hitless = [r for r in changes if r.get("detail", {}).get("hitless")]
    return {
        "events": len(records),
        "fault_transitions": len(injector.history),
        "lost_sessions": counts["lost"],
        "applied_changes": len(changes),
        "hitless_rate": round(len(hitless) / len(changes), 3) if changes else None,
    }


def _pct(values, q):
    return float(np.percentile(np.asarray(values, dtype=float), q))


def write_artifacts():
    ops = zipf_churn_ops()
    inc = [op["incremental"] for op in ops]
    full = [op["full"] for op in ops]
    hitless_rate = sum(op["hitless"] for op in ops) / len(ops)
    sweep_rows = [
        {
            "arm": arm,
            "ops": len(vals),
            "p50_links_touched": round(_pct(vals, 50), 1),
            "p95_links_touched": round(_pct(vals, 95), 1),
            "mean_links_touched": round(float(np.mean(vals)), 2),
        }
        for arm, vals in (("incremental", inc), ("full-reroute", full))
    ]
    emit(
        "w1_churn",
        sweep_rows,
        title=(
            f"W1: links reconfigured per membership change, Zipf sizes "
            f"({TOPOLOGY} N={N_PORTS}, {len(ops)} ops, "
            f"hitless rate {hitless_rate:.2f})"
        ),
    )

    drift = drift_scenarios()
    drift_hits = [s for s in drift if s["unlimited_max_drift"] > 0]
    fallback_total = sum(s["limit0_fallbacks"] for s in drift)

    drill = flash_crowd_drill()

    payload = {
        "experiment": "w1_churn",
        "workload": {
            "topology": TOPOLOGY,
            "n_ports": N_PORTS,
            "conferences": CONFERENCES,
            "churn_ops_per_conference": CHURN_OPS,
            "size_distribution": "zipf(alpha=1.8, min=2, max=16)",
            "seed": SEED,
        },
        "incremental": {
            "p50_links_touched": _pct(inc, 50),
            "p95_links_touched": _pct(inc, 95),
            "hitless_rate": hitless_rate,
        },
        "full_reroute": {
            "p50_links_touched": _pct(full, 50),
            "p95_links_touched": _pct(full, 95),
        },
        "p50_strictly_fewer": _pct(inc, 50) < _pct(full, 50),
        "drift": {
            "topology": "omega",
            "scenarios": len(drift),
            "scenarios_with_drift": len(drift_hits),
            "max_drift_links": max((s["unlimited_max_drift"] for s in drift), default=0),
            "fallback_triggers_at_limit_0": fallback_total,
            "drift_after_fallback": max((s["limit0_final_drift"] for s in drift), default=0),
        },
        "flash_crowd_drill": drill,
        "note": (
            "links_touched: incremental = |added|+|removed| (delta "
            "reprogramming), full = |before ∪ after| (wholesale "
            "reinstall); drift = extra links a pinned route carries over "
            "a from-scratch route for the same members"
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    # The acceptance criteria, asserted where the artifact is written.
    assert payload["p50_strictly_fewer"], (
        f"incremental p50 {payload['incremental']['p50_links_touched']} not "
        f"strictly below full-reroute p50 "
        f"{payload['full_reroute']['p50_links_touched']}"
    )
    assert drift, "no fault-healed drift scenarios found on omega"
    assert drift_hits, "drift never accrued — the drift knob is unmeasurable"
    assert fallback_total > 0, "drift_limit=0 never triggered the fallback"
    assert all(s["limit0_final_drift"] == 0 for s in drift), (
        "fallback reroute left residual drift"
    )
    assert drill["lost_sessions"] == 0, "flash-crowd drill lost sessions"
    assert drill["fault_transitions"] > 0, "drill fault timeline never fired"
    assert drill["applied_changes"] > 0, "drill applied no membership changes"
    return payload


def test_w1_zipf_churn(benchmark):
    ops = benchmark(zipf_churn_ops)
    assert _pct([o["incremental"] for o in ops], 50) < _pct([o["full"] for o in ops], 50)


def test_w1_artifacts(benchmark):
    benchmark(lambda: None)
    payload = write_artifacts()
    assert payload["flash_crowd_drill"]["lost_sessions"] == 0


if __name__ == "__main__":
    print(json.dumps(write_artifacts(), indent=2, sort_keys=True))
