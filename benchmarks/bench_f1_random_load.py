"""Experiment F1 — conflict multiplicity under random traffic.

Worst cases are adversarial; what does *typical* traffic need?  For
each topology and offered load, many random disjoint conference sets
are routed and the distribution of the required dilation (max link
multiplicity per set) is reported.  Includes the clustered generator to
show that locality tames the cube's conflicts, and the interleaved
generator to show how far random draws sit from the adversarial corner.
"""

import numpy as np
from _common import emit

from repro.core.conflict import analyze_conflicts
from repro.core.routing import route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.workloads.generators import clustered, interleaved, uniform_partition

N_PORTS = 64
TRIALS = 40
LOADS = (0.25, 0.5, 0.75, 1.0)


def _distribution(net, sets):
    maxes = []
    for cs in sets:
        routes = [route_conference(net, c) for c in cs]
        report = analyze_conflicts(routes, n_stages=net.n_stages)
        maxes.append(report.max_multiplicity)
    arr = np.asarray(maxes)
    return {
        "mean": float(arr.mean()),
        "p95": float(np.percentile(arr, 95)),
        "max": int(arr.max()),
    }


def build_rows():
    rows = []
    for name in PAPER_TOPOLOGIES:
        net = build(name, N_PORTS)
        for load in LOADS:
            sets = [
                uniform_partition(N_PORTS, load=load, seed=1000 + i)
                for i in range(TRIALS)
            ]
            stats = _distribution(net, sets)
            rows.append({"topology": name, "workload": "uniform", "load": load, **stats})
        sets = [clustered(N_PORTS, load=0.75, seed=2000 + i) for i in range(TRIALS)]
        rows.append(
            {"topology": name, "workload": "clustered", "load": 0.75, **_distribution(net, sets)}
        )
        sets = [interleaved(N_PORTS, seed=3000 + i) for i in range(TRIALS)]
        rows.append(
            {"topology": name, "workload": "interleaved", "load": 0.22, **_distribution(net, sets)}
        )
    return rows


def test_f1_random_load(benchmark):
    net = build("indirect-binary-cube", N_PORTS)
    workload = uniform_partition(N_PORTS, load=0.75, seed=7)

    def kernel():
        routes = [route_conference(net, c) for c in workload]
        return analyze_conflicts(routes, n_stages=net.n_stages)

    benchmark(kernel)
    rows = build_rows()
    emit(
        "f1_random_load",
        rows,
        title=f"F1: required dilation under random traffic (N={N_PORTS}, {TRIALS} trials)",
    )
    by_key = {(r["topology"], r["workload"], r["load"]): r for r in rows}
    for name in PAPER_TOPOLOGIES:
        # More load -> no less contention (monotone mean).
        means = [by_key[(name, "uniform", load)]["mean"] for load in LOADS]
        assert means == sorted(means)
        # At half load, typical traffic needs well under the sqrt(N)
        # worst case (8 at N=64)...
        assert by_key[(name, "uniform", 0.5)]["p95"] <= 6
        # ...and clustering tames contention relative to uniform draws.
        assert (
            by_key[(name, "clustered", 0.75)]["mean"]
            < by_key[(name, "uniform", 0.75)]["mean"]
        )
    # Notable measured nuance: under random traffic omega is no worse
    # than the cube despite its worse adversarial bound.
    assert (
        by_key[("omega", "uniform", 1.0)]["mean"]
        <= by_key[("baseline", "uniform", 1.0)]["mean"]
    )
    # The interleaved generator lands on the cube's bad corner.
    cube_adv = by_key[("indirect-binary-cube", "interleaved", 0.22)]
    assert cube_adv["max"] >= 6
