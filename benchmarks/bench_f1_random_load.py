"""Experiment F1 — conflict multiplicity under random traffic.

Worst cases are adversarial; what does *typical* traffic need?  For
each topology and offered load, many random disjoint conference sets
are routed and the distribution of the required dilation (max link
multiplicity per set) is reported.  Includes the clustered generator to
show that locality tames the cube's conflicts, and the interleaved
generator to show how far random draws sit from the adversarial corner.

The sweep runs on the parallel experiment engine
(:func:`repro.parallel.experiments.random_load_arm`) with the legacy
per-trial seed convention (``base + i``), so the numbers are identical
to the original single-process loop at any worker count — experiment
P1 times exactly this sweep serial vs parallel.
"""

import os

from _common import emit

from repro.parallel.experiments import random_load_arm
from repro.topology.builders import PAPER_TOPOLOGIES

N_PORTS = 64
TRIALS = 40
LOADS = (0.25, 0.5, 0.75, 1.0)
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None


def build_rows(workers=WORKERS, chunk_size=None):
    rows = []
    for name in PAPER_TOPOLOGIES:
        for load in LOADS:
            arm = random_load_arm(
                name, N_PORTS, workload="uniform", trials=TRIALS,
                seeds=range(1000, 1000 + TRIALS), load=load,
                workers=workers, chunk_size=chunk_size,
            )
            rows.append({"topology": name, "workload": "uniform", "load": load, **arm["summary"]})
        arm = random_load_arm(
            name, N_PORTS, workload="clustered", trials=TRIALS,
            seeds=range(2000, 2000 + TRIALS), load=0.75,
            workers=workers, chunk_size=chunk_size,
        )
        rows.append({"topology": name, "workload": "clustered", "load": 0.75, **arm["summary"]})
        arm = random_load_arm(
            name, N_PORTS, workload="interleaved", trials=TRIALS,
            seeds=range(3000, 3000 + TRIALS),
            workers=workers, chunk_size=chunk_size,
        )
        rows.append({"topology": name, "workload": "interleaved", "load": 0.22, **arm["summary"]})
    return rows


def test_f1_random_load(benchmark):
    benchmark(
        lambda: random_load_arm(
            "indirect-binary-cube", N_PORTS, workload="uniform",
            trials=1, seeds=[7], load=0.75,
        )
    )
    rows = build_rows()
    emit(
        "f1_random_load",
        rows,
        title=f"F1: required dilation under random traffic (N={N_PORTS}, {TRIALS} trials)",
    )
    by_key = {(r["topology"], r["workload"], r["load"]): r for r in rows}
    for name in PAPER_TOPOLOGIES:
        # More load -> no less contention (monotone mean).
        means = [by_key[(name, "uniform", load)]["mean"] for load in LOADS]
        assert means == sorted(means)
        # At half load, typical traffic needs well under the sqrt(N)
        # worst case (8 at N=64)...
        assert by_key[(name, "uniform", 0.5)]["p95"] <= 6
        # ...and clustering tames contention relative to uniform draws.
        assert (
            by_key[(name, "clustered", 0.75)]["mean"]
            < by_key[(name, "uniform", 0.75)]["mean"]
        )
    # Notable measured nuance: under random traffic omega is no worse
    # than the cube despite its worse adversarial bound.
    assert (
        by_key[("omega", "uniform", 1.0)]["mean"]
        <= by_key[("baseline", "uniform", 1.0)]["mean"]
    )
    # The interleaved generator lands on the cube's bad corner.
    cube_adv = by_key[("indirect-binary-cube", "interleaved", 0.22)]
    assert cube_adv["max"] >= 6
