"""Experiment T3 — hardware cost of the competing designs.

The abstract's "less hardware cost?" question, priced: an N x N
conference crossbar, the Yang-2001 aligned cube design, and direct
standard networks provisioned either for the verified worst case
(dilation 2**floor(n/2)) or statistically (dilation 2, paired with
experiment F3's blocking curves).

Expected crossovers: the aligned design is always cheapest; the
worst-case-provisioned direct network overtakes the crossbar once
sqrt(N) * log N < N (N >= 64 here); dilation-2 statistical provisioning
is within ~2x of the aligned design at every size.
"""

from _common import emit

from repro.analysis.cost import (
    crossbar_cost,
    direct_network_cost,
    yang2001_cost,
)

SIZES = (8, 16, 32, 64, 256, 1024, 4096)


def build_rows():
    rows = []
    for n_ports in SIZES:
        for cost in (
            crossbar_cost(n_ports),
            yang2001_cost(n_ports),
            direct_network_cost(n_ports),
            direct_network_cost(n_ports, dilation=2),
        ):
            rows.append(cost.row())
    return rows


def test_t3_hardware_cost(benchmark):
    benchmark(build_rows)
    rows = build_rows()
    emit(
        "t3_hardware_cost",
        rows,
        title="T3: hardware cost comparison (gate-equivalents)",
        columns=["design", "N", "stages", "dilation", "crosspoints",
                 "mixer_inputs", "mux_inputs", "total"],
    )
    by = {(r["design"].split("-d")[0], r["N"]): r["total"] for r in rows}
    for n_ports in SIZES:
        aligned = by[("yang2001-cube-aligned", n_ports)]
        xbar = by[("crossbar", n_ports)]
        stat = by[("direct-indirect-binary-cube", n_ports)]
        # Ties at N=8 (128 gates each); strictly cheaper from N=16 on.
        assert aligned < xbar if n_ports >= 16 else aligned <= xbar
        assert aligned <= stat
    # Worst-case provisioning loses to the crossbar at small N but wins at scale.
    worst = {r["N"]: r["total"] for r in rows if r["dilation"] not in (1, 2)}
    assert worst.get(16, 0) > by[("crossbar", 16)] or 16 not in worst
    assert worst[4096] < by[("crossbar", 4096)]
