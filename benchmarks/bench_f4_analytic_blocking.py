"""Experiment F4 — analytic (Erlang reduced-load) vs simulated blocking.

Validates the teletraffic approximation in ``repro.analysis.erlang``
against the discrete-event simulator: same topology, same offered load,
capacity blocking per dilation.  The link-independence assumption makes
the analytic model conservative (it over-predicts blocking at low
dilation, where the links of one route share fate), but both curves
collapse together as dilation grows — good enough for first-cut
capacity planning without running a simulation.
"""

from _common import emit

from repro.analysis.erlang import estimate_link_model, predicted_blocking
from repro.core.network import ConferenceNetwork
from repro.sim.scenarios import run_traffic
from repro.sim.traffic import TrafficConfig
from repro.topology.builders import build

N_PORTS = 32
DILATIONS = (1, 2, 3, 4, 6, 8)
CONFIG = TrafficConfig(arrival_rate=1.5, mean_holding=6.0, mean_size=4.0)
DURATION = 1500.0


def build_rows():
    net = build("indirect-binary-cube", N_PORTS)
    model = estimate_link_model(net, mean_size=CONFIG.mean_size, samples=300, seed=0)
    rows = []
    for dilation in DILATIONS:
        predicted = predicted_blocking(
            net, CONFIG.offered_erlangs, dilation, model=model, seed=2
        )
        network = ConferenceNetwork.build("indirect-binary-cube", N_PORTS, dilation=dilation)
        stats = run_traffic(network, CONFIG, duration=DURATION, seed=11)
        rows.append(
            {
                "dilation": dilation,
                "analytic_blocking": round(predicted, 4),
                "simulated_blocking": round(stats.capacity_blocking_probability, 4),
                "abs_error": round(abs(predicted - stats.capacity_blocking_probability), 4),
            }
        )
    return rows


def test_f4_analytic_blocking(benchmark):
    net = build("indirect-binary-cube", N_PORTS)
    model = estimate_link_model(net, samples=150, seed=0)
    benchmark(lambda: predicted_blocking(net, CONFIG.offered_erlangs, 2, model=model))
    rows = build_rows()
    emit(
        "f4_analytic_blocking",
        rows,
        title=f"F4: analytic vs simulated capacity blocking (N={N_PORTS}, "
        f"{CONFIG.offered_erlangs:.0f} erlangs)",
    )
    analytic = [r["analytic_blocking"] for r in rows]
    simulated = [r["simulated_blocking"] for r in rows]
    # Both curves decrease in dilation and end near zero.
    assert analytic == sorted(analytic, reverse=True)
    assert simulated[0] > 0.3 and simulated[-1] < 0.05
    # The independence approximation keeps a slow conservative tail.
    assert analytic[-1] < 0.1
    # The model tracks simulation within a coarse band at mid dilations
    # and is conservative (>= simulated) once past the severe-overload
    # regime where the independence assumption matters most.
    for r in rows:
        if r["dilation"] >= 3:
            assert r["analytic_blocking"] >= r["simulated_blocking"] - 0.05
