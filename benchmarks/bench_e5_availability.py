"""Extension E5 — live availability: fault injection + self-healing.

E2 measures *static* survivability: freeze a fault set, ask which
conferences still route.  This bench runs the *live* version: links
fail and repair as a seeded stochastic process while the self-healing
controller walks affected conferences down the degradation ladder
(hitless tap move -> full reroute -> drop) and a bounded-backoff retry
queue redials the drops.

Two comparisons, both on one pre-generated fault timeline so the fault
process is identical across arms:

* relay on vs relay off for a steady conference population — the
  relay's late-tap freedom turns repairs into hitless tap moves and
  lifts time-averaged availability;
* bounded backoff vs immediate loss at equal offered load — retries
  ride out repair windows instead of abandoning calls;
* protected (precomputed backup plans, F=2) vs unprotected failover on
  the identical timeline — protection moves route-search work off the
  failure path (recovery ticks) without changing a single decision,
  and the memory-vs-F table prices the stored plans.
"""

import os

from _common import emit

from repro.analysis.resilience import availability_over_time, retry_ablation
from repro.core.healing import RetryPolicy
from repro.parallel.experiments import availability_arm
from repro.parallel.runner import run_tasks
from repro.sim.faults import FaultProcessConfig
from repro.sim.scenarios import run_availability
from repro.sim.traffic import TrafficConfig

N_PORTS = 32
DURATION = 1500.0
WORKERS = int(os.environ.get("REPRO_BENCH_WORKERS", "0")) or None

STEADY_PROCESS = FaultProcessConfig(mean_time_to_failure=1500.0, mean_time_to_repair=30.0)
STEADY_RETRY = RetryPolicy(max_retries=10, base_delay=1.0, backoff=2.0, max_delay=60.0)

TRAFFIC = TrafficConfig(arrival_rate=1.5, mean_holding=15.0, mean_size=3.0, max_size=5)
TRAFFIC_PROCESS = FaultProcessConfig(mean_time_to_failure=800.0, mean_time_to_repair=15.0)
TRAFFIC_RETRY = RetryPolicy(max_retries=10, base_delay=1.0, backoff=2.0, max_delay=40.0)


def build_rows(workers=WORKERS):
    # One engine task per topology: each runs the relay-on/off pair on
    # its own pre-generated fault timeline.
    arms = [{"topology": topo} for topo in ("indirect-binary-cube", "extra-stage-cube", "benes-cube")]
    params = {
        "n_ports": N_PORTS,
        "process": STEADY_PROCESS,
        "duration": DURATION,
        "retry": STEADY_RETRY,
        "seed": 0,
    }
    rows = []
    for arm_rows in run_tasks(availability_arm, arms, params=params, workers=workers):
        for row in arm_rows:
            rows.append(
                {
                    "topology": row["topology"],
                    "relay": row["relay"],
                    "availability": row["availability"],
                    "degraded_fraction": row["degraded_fraction"],
                    "dropped": row["dropped"],
                    "tap_moves": row["tap_move_events"],
                    "reroutes": row["reroutes"],
                    "lost_calls": row["lost_calls"],
                }
            )
    return rows


def retry_rows():
    rows = []
    for label, policy in (("backoff", TRAFFIC_RETRY), ("no-retry", None)):
        run = run_availability(
            "extra-stage-cube",
            N_PORTS,
            dilation=2,
            config=TRAFFIC,
            process=TRAFFIC_PROCESS,
            retry=policy,
            duration=800.0,
            seed=0,
        )
        summary = run.summary()
        rows.append(
            {
                "retry": label,
                "offered": summary["offered"],
                "admitted": summary["admitted"],
                "availability": summary["availability"],
                "lost_calls": summary["lost_calls"],
                "retries_succeeded": summary.get("retries_succeeded", 0),
            }
        )
    return rows


def protection_rows():
    """Protected vs unprotected self-healing on the identical timeline."""
    rows = []
    for protection in (0, 2):
        for row in availability_over_time(
            "extra-stage-cube",
            N_PORTS,
            process=STEADY_PROCESS,
            duration=DURATION,
            retry=STEADY_RETRY,
            seed=0,
            protection=protection,
        ):
            rows.append(
                {
                    "relay": row["relay"],
                    "protection": row["protection"],
                    "availability": row["availability"],
                    "dropped": row["dropped"],
                    "plan_hits": row["plan_hits"],
                    "plan_misses": row["plan_misses"],
                    "recovery_events": row["recovery_events"],
                    "recovery_mean": row["recovery_ticks_mean"],
                    "recovery_p50": row["recovery_ticks_p50"],
                    "recovery_p95": row["recovery_ticks_p95"],
                    "recovery_max": row["recovery_ticks_max"],
                }
            )
    return rows


def protection_memory_rows():
    """Memory-vs-F: realized plan-store footprint for one population."""
    from repro.core.healing import SelfHealingController
    from repro.core.network import ConferenceNetwork
    from repro.workloads.generators import uniform_partition

    population = list(uniform_partition(N_PORTS, load=0.6, seed=0))
    rows = []
    for protection in (0, 1, 2, 4):
        network = ConferenceNetwork.build("extra-stage-cube", N_PORTS, dilation=N_PORTS)
        healing = SelfHealingController(network, rng=0, protection=protection)
        for conf in population:
            healing.try_join(conf)
        if healing.plan_store is None:
            foot = {"protection": 0, "conferences": 0, "plans": 0,
                    "negative_plans": 0, "route_cells": 0}
        else:
            foot = healing.plan_store.footprint()
        foot["live_conferences"] = len(healing.live_conferences)
        rows.append(foot)
    return rows


def test_e5_availability(benchmark):
    benchmark(
        lambda: availability_over_time(
            "extra-stage-cube",
            16,
            process=STEADY_PROCESS,
            duration=300.0,
            retry=STEADY_RETRY,
            seed=0,
        )
    )

    rows = build_rows()
    emit(
        "e5_availability",
        rows,
        title=f"E5: availability under live link failure/repair (N={N_PORTS}, "
        f"MTTF={STEADY_PROCESS.mean_time_to_failure}, MTTR={STEADY_PROCESS.mean_time_to_repair})",
    )
    by = {(r["topology"], r["relay"]): r["availability"] for r in rows}
    # The relay never hurts, and with extra stages (alternate late taps)
    # it strictly lifts availability under the identical fault timeline.
    for topo in ("indirect-binary-cube", "extra-stage-cube", "benes-cube"):
        assert by[(topo, "on")] >= by[(topo, "off")]
    assert by[("extra-stage-cube", "on")] > by[("extra-stage-cube", "off")]
    assert by[("benes-cube", "on")] > by[("benes-cube", "off")]

    prot_rows = protection_rows()
    emit(
        "e5_protection",
        prot_rows,
        title=f"E5: protected (F=2) vs reactive failover, identical timeline "
        f"(extra-stage-cube, N={N_PORTS})",
    )
    by_prot = {(r["relay"], r["protection"]): r for r in prot_rows}
    for relay in ("on", "off"):
        reactive, protected = by_prot[(relay, 0)], by_prot[(relay, 2)]
        # Bit-identity: protection may never change what is decided.
        assert protected["availability"] == reactive["availability"]
        assert protected["dropped"] == reactive["dropped"]
        assert protected["recovery_events"] == reactive["recovery_events"]
        # The point of the fast path: strictly less work on the failure
        # path, with every reactive disruption costing a full search.
        assert reactive["recovery_mean"] == 1.0 or reactive["recovery_events"] == 0
        assert protected["recovery_mean"] <= reactive["recovery_mean"]
    assert sum(r["plan_hits"] for r in prot_rows if r["protection"] == 2) > 0
    assert all(r["plan_hits"] == 0 for r in prot_rows if r["protection"] == 0)

    memory = protection_memory_rows()
    emit(
        "e5_protection_memory",
        memory,
        title=f"E5: plan-store footprint vs protection level F "
        f"(extra-stage-cube, N={N_PORTS}, load=0.6)",
    )
    cells = {r["protection"]: r["route_cells"] for r in memory}
    plans = {r["protection"]: r["plans"] for r in memory}
    assert plans[0] == 0 and cells[0] == 0
    assert plans[1] <= plans[2] <= plans[4]
    assert cells[1] <= cells[2] <= cells[4]

    ablation = retry_rows()
    emit(
        "e5_retry_ablation",
        ablation,
        title="E5: bounded backoff vs immediate loss (extra-stage-cube, "
        f"N={N_PORTS}, equal offered load)",
    )
    by_retry = {r["retry"]: r for r in ablation}
    # Retries ride out repair windows: strictly fewer calls lost for good.
    assert by_retry["backoff"]["lost_calls"] < by_retry["no-retry"]["lost_calls"]

    # Determinism: the whole experiment reproduces byte-identically from
    # its seed.
    again = retry_ablation(
        "extra-stage-cube",
        N_PORTS,
        config=TRAFFIC,
        process=TRAFFIC_PROCESS,
        retry=TRAFFIC_RETRY,
        duration=800.0,
        dilation=2,
        seed=0,
    )
    once = retry_ablation(
        "extra-stage-cube",
        N_PORTS,
        config=TRAFFIC,
        process=TRAFFIC_PROCESS,
        retry=TRAFFIC_RETRY,
        duration=800.0,
        dilation=2,
        seed=0,
    )
    assert once == again
