"""P1 — parallel engine scaling on the F1 random-load sweep.

Times one fixed F1 workload (random uniform-partition load on the
extra-stage cube) through the serial engine and through process pools
of width 2 and 4, asserting along the way that every configuration
produces byte-identical records — wall clock may move, results may not.

Speedup on a laptop is an artifact of core count, so the ``>= 2x at 4
workers`` acceptance target is asserted only when the host actually
exposes 4+ cores; either way the measured numbers, the core count and
the verdict are recorded in ``benchmarks/results/p1_parallel_scaling.*``
and the repo-root ``BENCH_p1.json`` so the claim is auditable.

Run directly (``python benchmarks/bench_p1_parallel_scaling.py``) or
via pytest.
"""

import json
import os
import time
from pathlib import Path

from _common import emit

from repro.parallel.cache import shared_network, shared_route_cache
from repro.parallel.experiments import random_load_arm

N_PORTS = 32
TRIALS = 120
SEED = 2026
TOPOLOGY = "extra-stage-cube"
SPEEDUP_TARGET = 2.0
BENCH_JSON = Path(__file__).resolve().parent.parent / "BENCH_p1.json"


def _cpu_count() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux hosts
        return os.cpu_count() or 1


def _run(workers):
    # Each configuration pays its own warmup: parent-side registries
    # would otherwise be inherited by forked workers and by the serial
    # run, whichever goes second.
    shared_route_cache.cache_clear()
    shared_network.cache_clear()
    start = time.perf_counter()
    arm = random_load_arm(TOPOLOGY, N_PORTS, trials=TRIALS, seed=SEED, workers=workers)
    return time.perf_counter() - start, arm


def build_rows():
    cpus = _cpu_count()
    timings = {}
    arms = {}
    for workers in (None, 2, 4):
        timings[workers], arms[workers] = _run(workers)

    # The determinism contract, asserted on the timed runs themselves.
    for workers in (2, 4):
        assert arms[workers] == arms[None], f"workers={workers} diverged from serial"

    rows = []
    for workers in (None, 2, 4):
        rows.append(
            {
                "engine": "serial" if workers is None else f"pool-{workers}",
                "wall_s": round(timings[workers], 3),
                "speedup": round(timings[None] / timings[workers], 2),
                "trials": TRIALS,
                "cpus": cpus,
            }
        )
    return rows, timings, arms[None]["summary"], cpus


def write_artifacts():
    rows, timings, summary, cpus = build_rows()
    emit(
        "p1_parallel_scaling",
        rows,
        title=f"P1: serial vs pooled F1 random-load sweep ({TOPOLOGY}, "
        f"N={N_PORTS}, {TRIALS} trials, {cpus} cpu(s))",
    )
    speedup4 = timings[None] / timings[4]
    can_judge = cpus >= 4
    payload = {
        "experiment": "p1_parallel_scaling",
        "workload": {
            "topology": TOPOLOGY,
            "n_ports": N_PORTS,
            "trials": TRIALS,
            "seed": SEED,
            "summary": summary,
        },
        "cpus": cpus,
        "wall_seconds": {
            "serial": timings[None],
            "pool_2": timings[2],
            "pool_4": timings[4],
        },
        "speedup": {
            "pool_2": timings[None] / timings[2],
            "pool_4": speedup4,
        },
        "target_speedup_at_4_workers": SPEEDUP_TARGET,
        "meets_target": speedup4 >= SPEEDUP_TARGET if can_judge else None,
        "deterministic": True,
        "note": (
            "target judged on this host"
            if can_judge
            else f"host exposes {cpus} cpu(s); the >=2x-at-4-workers target "
            "needs 4+ cores, so it is recorded but not judged here "
            "(determinism is asserted regardless)"
        ),
    }
    BENCH_JSON.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    if can_judge:
        assert speedup4 >= SPEEDUP_TARGET, (
            f"pool-4 speedup {speedup4:.2f}x below the {SPEEDUP_TARGET}x target "
            f"on a {cpus}-cpu host"
        )
    return payload


def test_p1_parallel_scaling(benchmark):
    benchmark(lambda: random_load_arm(TOPOLOGY, 16, trials=20, seed=SEED))
    write_artifacts()


if __name__ == "__main__":
    payload = write_artifacts()
    print(json.dumps(payload, indent=2, sort_keys=True))
