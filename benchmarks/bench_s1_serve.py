"""Serving S1 — online service throughput under churn and shedding policies.

The offline experiments realize a fixed conference set in one shot;
this bench measures the *online* path: the :class:`FabricService`
admitting a seeded stream of session opens/joins/leaves in per-tick
batches, with a fault timeline firing underneath and the bounded
admission queue shedding by policy.

Two tables:

* **policy arms** — the three shed policies at equal offered load on a
  deliberately tight queue: what each one trades (who gets rejected,
  queue depth, admission latency);
* **fault arms** — the same churn with and without live faults: the
  requeue path's cost in latency and the zero-lost-sessions invariant.
"""

from _common import emit

from repro.core.healing import RetryPolicy
from repro.serve.backpressure import ShedPolicy
from repro.serve.bench import run_serve_bench
from repro.sim.faults import FaultProcessConfig

N_PORTS = 64
CHURN = dict(
    conferences=400,
    seed=0,
    arrival_rate=5.0,
    mean_size=3.5,
    mean_hold_ticks=12.0,
    resize_prob=0.25,
    retry=RetryPolicy(max_retries=5, base_delay=1.0),
)
FAULTS = FaultProcessConfig(mean_time_to_failure=800.0, mean_time_to_repair=4.0)


def policy_rows():
    rows = []
    for policy in ShedPolicy:
        report = run_serve_bench(
            N_PORTS, queue_capacity=8, max_batch=4, shed_policy=policy, **CHURN
        )
        svc = report.service
        rows.append(
            {
                "policy": policy.value,
                "admitted": svc["admitted"],
                "rejected": svc["rejected"],
                "shed": svc["shed"],
                "peak_depth": report.peak_queue_depth,
                "mean_latency": round(svc["mean_admission_latency"], 2),
                "throughput": round(report.throughput, 3),
            }
        )
    return rows


def fault_rows():
    rows = []
    for label, process in (("healthy", None), ("live faults", FAULTS)):
        report = run_serve_bench(
            N_PORTS, queue_capacity=128, fault_process=process, **CHURN
        )
        svc = report.service
        rows.append(
            {
                "faults": label,
                "transitions": report.fault_transitions,
                "admitted": svc["admitted"],
                "requeues": svc["requeues"],
                "lost_sessions": report.lost_sessions,
                "mean_latency": round(svc["mean_admission_latency"], 2),
                "ticks": report.ticks,
            }
        )
    return rows


def test_s1_serve(benchmark):
    benchmark(
        lambda: run_serve_bench(
            32,
            conferences=60,
            seed=0,
            arrival_rate=4.0,
            mean_hold_ticks=8.0,
        )
    )

    rows = policy_rows()
    emit(
        "s1_serve_policies",
        rows,
        title=f"S1: shed policies on a tight queue (N={N_PORTS}, capacity=8, batch=4)",
    )
    # Every policy keeps the backlog within the bound, and the priority
    # lanes never shed more than plain tail drop rejects.
    assert all(r["peak_depth"] <= 8 for r in rows)

    rows = fault_rows()
    emit(
        "s1_serve_faults",
        rows,
        title=f"S1: churn with and without live faults (N={N_PORTS})",
    )
    # The invariant the service exists for: faults cost latency and
    # requeues, never sessions.
    assert all(r["lost_sessions"] == 0 for r in rows)
    faulty = next(r for r in rows if r["faults"] == "live faults")
    assert faulty["transitions"] > 0
