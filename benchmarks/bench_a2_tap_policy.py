"""Ablation A2 — earliest-tap vs final-stage taps: conflict impact.

The mux relay lets conferences exit at their combining stage.  Routing
the same workloads with taps forced to the final stage (relay off)
shows what the enhancement buys in *link pressure*: every conference
then occupies all ``n`` stages, inflating total links used.  A measured
nuance this ablation surfaces: the relay is a latency/link optimization,
not a conflict optimization — worst multiplicity is essentially
unchanged (and on omega, early taps can even cost a small fraction of a
channel on average, because early routes concentrate on suffix-named
rows).
"""

import numpy as np
from _common import emit

from repro.core.conflict import analyze_conflicts
from repro.core.routing import RoutingPolicy, TapPolicy, route_conference
from repro.topology.builders import PAPER_TOPOLOGIES, build
from repro.workloads.generators import uniform_partition

N_PORTS = 64
TRIALS = 20


def build_rows():
    rows = []
    for name in PAPER_TOPOLOGIES:
        net = build(name, N_PORTS)
        for label, policy in (
            ("earliest (relay on)", RoutingPolicy(tap_policy=TapPolicy.EARLIEST)),
            ("final (relay off)", RoutingPolicy(tap_policy=TapPolicy.FINAL)),
        ):
            links, mults = [], []
            for i in range(TRIALS):
                cs = uniform_partition(N_PORTS, load=0.75, seed=700 + i)
                routes = [route_conference(net, c, policy) for c in cs]
                links.append(sum(r.n_links for r in routes))
                mults.append(analyze_conflicts(routes, net.n_stages).max_multiplicity)
            rows.append(
                {
                    "topology": name,
                    "tap_policy": label,
                    "mean_links": float(np.mean(links)),
                    "mean_dilation": float(np.mean(mults)),
                    "max_dilation": int(np.max(mults)),
                }
            )
    return rows


def test_a2_tap_policy(benchmark):
    net = build("baseline", N_PORTS)
    cs = uniform_partition(N_PORTS, load=0.75, seed=7)
    policy = RoutingPolicy(tap_policy=TapPolicy.FINAL)
    benchmark(lambda: [route_conference(net, c, policy) for c in cs])
    rows = build_rows()
    emit("a2_tap_policy", rows, title=f"A2: tap policy ablation (N={N_PORTS}, {TRIALS} sets)")
    by = {(r["topology"], r["tap_policy"].split()[0]): r for r in rows}
    for name in PAPER_TOPOLOGIES:
        early, late = by[(name, "earliest")], by[(name, "final")]
        assert early["mean_links"] < late["mean_links"]
        # Conflict pressure is essentially policy-independent.
        assert abs(early["mean_dilation"] - late["mean_dilation"]) <= 0.5
        assert abs(early["max_dilation"] - late["max_dilation"]) <= 1
